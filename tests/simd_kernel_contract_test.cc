// Pins the fixed-lane reduction contract (tensor/lanes.h, DESIGN.md §12)
// bit for bit: every vectorized kernel is checked against a
// straightforward reference implementation of the contract, across sizes
// chosen to hit the no-block, exactly-one-block, block-plus-tail, and
// many-blocks regimes. Also asserts the properties the contract promises:
// short reductions (n <= kLanes) match strict left-to-right order, tiled
// MatMul matches the historical i-k-j kernel, parallel dispatch never
// changes a bit, and the fused multi-tensor optimizer step matches a
// scalar per-element reference. A failure here means the determinism
// contract broke — fix the kernel, do not regenerate goldens.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "gnn/message_kernels.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/lanes.h"
#include "tensor/tensor.h"
#include "tensor/tuning.h"

namespace dekg {
namespace {

using tune::kLanes;

// Sizes covering every shape of the contract: empty, scalar tail only,
// one exact block, block + 1 tail, several blocks, several blocks + odd
// tail, and a large non-round size.
std::vector<int64_t> ContractSizes() {
  return {0,          1,           kLanes - 1,     kLanes,
          kLanes + 1, 2 * kLanes,  4 * kLanes + 3, 67,
          255,        8 * kLanes + kLanes - 1};
}

Tensor RandomTensor(Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), -1.5f, 1.5f, &rng);
}

// Reference implementation of the contract, written naively.
float RefLaneDotF32(const float* a, const float* c, int64_t n) {
  const int64_t blocks = n / kLanes;
  std::vector<float> acc(static_cast<size_t>(kLanes), 0.0f);
  for (int64_t b = 0; b < blocks; ++b) {
    for (int64_t l = 0; l < kLanes; ++l) {
      acc[static_cast<size_t>(l)] += a[b * kLanes + l] * c[b * kLanes + l];
    }
  }
  float total = acc[0];
  for (int64_t l = 1; l < kLanes; ++l) total += acc[static_cast<size_t>(l)];
  for (int64_t i = blocks * kLanes; i < n; ++i) total += a[i] * c[i];
  return total;
}

double RefLaneDotF64(const float* a, const float* c, int64_t n) {
  const int64_t blocks = n / kLanes;
  std::vector<double> acc(static_cast<size_t>(kLanes), 0.0);
  for (int64_t b = 0; b < blocks; ++b) {
    for (int64_t l = 0; l < kLanes; ++l) {
      acc[static_cast<size_t>(l)] +=
          static_cast<double>(a[b * kLanes + l]) * c[b * kLanes + l];
    }
  }
  double total = acc[0];
  for (int64_t l = 1; l < kLanes; ++l) total += acc[static_cast<size_t>(l)];
  for (int64_t i = blocks * kLanes; i < n; ++i) {
    total += static_cast<double>(a[i]) * c[i];
  }
  return total;
}

TEST(LaneContractTest, DotF32MatchesReferenceBitwise) {
  for (int64_t n : ContractSizes()) {
    Tensor a = RandomTensor({std::max<int64_t>(n, 1)}, 11 + n);
    Tensor c = RandomTensor({std::max<int64_t>(n, 1)}, 23 + n);
    const float got = lanes::LaneDotF32(a.Data(), c.Data(), n);
    const float want = RefLaneDotF32(a.Data(), c.Data(), n);
    EXPECT_EQ(std::bit_cast<uint32_t>(got), std::bit_cast<uint32_t>(want))
        << "n=" << n;
  }
}

TEST(LaneContractTest, DotF64MatchesReferenceBitwise) {
  for (int64_t n : ContractSizes()) {
    Tensor a = RandomTensor({std::max<int64_t>(n, 1)}, 31 + n);
    Tensor c = RandomTensor({std::max<int64_t>(n, 1)}, 47 + n);
    const double got = lanes::LaneDotF64(a.Data(), c.Data(), n);
    const double want = RefLaneDotF64(a.Data(), c.Data(), n);
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
        << "n=" << n;
  }
}

TEST(LaneContractTest, SumF64MatchesReferenceBitwise) {
  for (int64_t n : ContractSizes()) {
    Tensor a = RandomTensor({std::max<int64_t>(n, 1)}, 53 + n);
    Tensor ones = Tensor::Ones({std::max<int64_t>(n, 1)});
    const double got = lanes::LaneSumF64(a.Data(), n);
    // Summation is the dot against an all-ones vector element for
    // element, but spell the reference out independently.
    const int64_t blocks = n / kLanes;
    std::vector<double> acc(static_cast<size_t>(kLanes), 0.0);
    for (int64_t b = 0; b < blocks; ++b) {
      for (int64_t l = 0; l < kLanes; ++l) {
        acc[static_cast<size_t>(l)] += a.Data()[b * kLanes + l];
      }
    }
    double want = acc[0];
    for (int64_t l = 1; l < kLanes; ++l) want += acc[static_cast<size_t>(l)];
    for (int64_t i = blocks * kLanes; i < n; ++i) want += a.Data()[i];
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
        << "n=" << n;
  }
}

// The property the golden history leans on: with no whole block, the lane
// reduction contributes an exact +0 and the contract degenerates to the
// plain sequential loop. n == kLanes also matches sequential order (one
// block, linear lane reduce).
TEST(LaneContractTest, ShortReductionsMatchSequentialBitwise) {
  for (int64_t n = 0; n <= kLanes; ++n) {
    Tensor a = RandomTensor({std::max<int64_t>(n, 1)}, 61 + n);
    Tensor c = RandomTensor({std::max<int64_t>(n, 1)}, 71 + n);
    float seq = 0.0f;
    for (int64_t i = 0; i < n; ++i) seq += a.Data()[i] * c.Data()[i];
    const float got = lanes::LaneDotF32(a.Data(), c.Data(), n);
    EXPECT_EQ(std::bit_cast<uint32_t>(got), std::bit_cast<uint32_t>(seq))
        << "n=" << n;
  }
}

// Historical i-k-j MatMul kernel (pre-tiling), the bitwise reference for
// every n > 1 product.
Tensor RefMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  Tensor out(Shape{m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.Data();
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* b_row = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

void ExpectBitEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(a.Data()[i]),
              std::bit_cast<uint32_t>(b.Data()[i]))
        << what << " element " << i;
  }
}

TEST(MatMulContractTest, TiledKernelMatchesHistoricalBitwise) {
  // Sizes straddling the column tile and lane widths, plus the serial/
  // parallel dispatch threshold in both regimes.
  const int64_t tile = tune::kMatMulColTile;
  struct Dims {
    int64_t m, k, n;
  };
  const Dims dims[] = {{3, 5, 2},          {4, 16, tile - 1},
                       {4, 16, tile},      {4, 16, tile + 1},
                       {7, 33, 2 * tile + 3}, {64, 64, 64},
                       {1, 64, 2 * tile + 5}};
  for (const Dims& d : dims) {
    Tensor a = RandomTensor({d.m, d.k}, 101 + d.m + d.k);
    Tensor b = RandomTensor({d.k, d.n}, 203 + d.k + d.n);
    ExpectBitEqual(MatMul(a, b), RefMatMul(a, b), "tiled MatMul");
  }
}

TEST(MatMulContractTest, DotColumnPathFollowsLaneContract) {
  for (int64_t k : {int64_t{3}, kLanes, 4 * kLanes + 3, int64_t{67}}) {
    Tensor a = RandomTensor({5, k}, 301 + k);
    Tensor b = RandomTensor({k, 1}, 407 + k);
    Tensor out = MatMul(a, b);
    for (int64_t i = 0; i < 5; ++i) {
      const float want = RefLaneDotF32(a.Data() + i * k, b.Data(), k);
      EXPECT_EQ(std::bit_cast<uint32_t>(out.Data()[i]),
                std::bit_cast<uint32_t>(want))
          << "k=" << k << " row " << i;
    }
  }
}

TEST(MatMulContractTest, SkipZeroLhsMatchesDenseBitwise) {
  Rng rng(17);
  // Mostly-zero lhs so the probe actually takes the zero-skipping loop.
  Tensor a = Tensor::Zeros({24, 40});
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (rng.Bernoulli(0.15f)) a.Data()[i] = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  ASSERT_GE(SampledZeroFraction(a), tune::SkipZeroLhsMinZeroFraction());
  for (int64_t n : {int64_t{1}, kLanes, tune::kMatMulColTile + 3}) {
    Tensor b = RandomTensor({40, n}, 509 + n);
    ExpectBitEqual(MatMulSkipZeroLhs(a, b), MatMul(a, b),
                   "MatMulSkipZeroLhs vs MatMul");
  }
}

TEST(MatMulContractTest, ParallelDispatchIsThreadCountInvariant) {
  // Big enough that m*k*n clears the default parallel threshold for both
  // the m > 1 row split and the m == 1 column-tile split.
  Tensor a = RandomTensor({64, 128}, 601);
  Tensor b = RandomTensor({128, 160}, 701);
  Tensor row = RandomTensor({1, 2048}, 801);
  Tensor wide = RandomTensor({2048, 1024}, 901);
  SetDefaultThreadCount(1);
  Tensor serial = MatMul(a, b);
  Tensor serial_row = MatMul(row, wide);
  SetDefaultThreadCount(4);
  Tensor parallel = MatMul(a, b);
  Tensor parallel_row = MatMul(row, wide);
  SetDefaultThreadCount(0);  // restore env-driven default
  ExpectBitEqual(serial, parallel, "MatMul m>1 threads");
  ExpectBitEqual(serial_row, parallel_row, "MatMul m==1 threads");
}

TEST(ReductionContractTest, TensorReductionsFollowLaneContract) {
  Tensor a = RandomTensor({6, 4 * kLanes + 3}, 1009);
  Tensor b = RandomTensor({6, 4 * kLanes + 3}, 1103);
  const int64_t n = a.dim(1);
  Tensor sums = SumRows(a);
  Tensor norms = RowNorms(a);
  for (int64_t i = 0; i < a.dim(0); ++i) {
    const double want_sum = lanes::LaneSumF64(a.Data() + i * n, n);
    EXPECT_EQ(std::bit_cast<uint32_t>(sums.Data()[i]),
              std::bit_cast<uint32_t>(static_cast<float>(want_sum)));
    const double want_sq = RefLaneDotF64(a.Data() + i * n, a.Data() + i * n, n);
    EXPECT_EQ(std::bit_cast<uint32_t>(norms.Data()[i]),
              std::bit_cast<uint32_t>(
                  static_cast<float>(std::sqrt(want_sq))));
  }
  const float want_dot =
      static_cast<float>(RefLaneDotF64(a.Data(), b.Data(), a.numel()));
  EXPECT_EQ(std::bit_cast<uint32_t>(Dot(a, b)),
            std::bit_cast<uint32_t>(want_dot));
}

TEST(ReductionContractTest, SegmentOpsMatchScalarReferenceBitwise) {
  Tensor a = RandomTensor({9, 2 * kLanes + 5}, 1201);
  const std::vector<int64_t> offsets = {0, 2, 3, 7, 9};
  const int64_t cols = a.dim(1);
  Tensor sum = SegmentSumRows(a, offsets);
  Tensor mean = SegmentMeanRows(a, offsets);
  for (size_t g = 0; g + 1 < offsets.size(); ++g) {
    std::vector<float> ref(static_cast<size_t>(cols), 0.0f);
    for (int64_t i = offsets[g]; i < offsets[g + 1]; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        ref[static_cast<size_t>(j)] += a.Data()[i * cols + j];
      }
    }
    for (int64_t j = 0; j < cols; ++j) {
      EXPECT_EQ(std::bit_cast<uint32_t>(
                    sum.Data()[static_cast<int64_t>(g) * cols + j]),
                std::bit_cast<uint32_t>(ref[static_cast<size_t>(j)]));
    }
    const float inv = 1.0f / static_cast<float>(offsets[g + 1] - offsets[g]);
    for (int64_t j = 0; j < cols; ++j) {
      EXPECT_EQ(std::bit_cast<uint32_t>(
                    mean.Data()[static_cast<int64_t>(g) * cols + j]),
                std::bit_cast<uint32_t>(ref[static_cast<size_t>(j)] * inv));
    }
  }
}

TEST(MessageKernelContractTest, FusedSweepMatchesScalarReferenceBitwise) {
  const int64_t num_nodes = 12;
  const int64_t dout = 2 * kLanes + 3;  // blocks + odd tail
  const int64_t num_bases = 3;
  const std::vector<int64_t> src = {0, 3, 3, 7, 11, 2, 5};
  const std::vector<int64_t> dst = {1, 1, 4, 0, 6, 6, 6};  // duplicates
  const int64_t m = static_cast<int64_t>(src.size());
  std::vector<Tensor> transformed;
  std::vector<Tensor> coeffs;
  std::vector<const float*> pt;
  std::vector<const float*> pc;
  for (int64_t b = 0; b < num_bases; ++b) {
    transformed.push_back(RandomTensor({num_nodes, dout}, 1301 + b));
    coeffs.push_back(RandomTensor({m}, 1409 + b));
  }
  for (int64_t b = 0; b < num_bases; ++b) {
    pt.push_back(transformed[static_cast<size_t>(b)].Data());
    pc.push_back(coeffs[static_cast<size_t>(b)].Data());
  }
  Tensor gate = RandomTensor({m}, 1511);
  const float* gate_options[] = {nullptr, gate.Data()};
  for (const float* pg : gate_options) {
    Tensor got = Tensor::Zeros({num_nodes, dout});
    gnn::FusedMessageSweep(src, dst, pt, pc, pg, dout, got.Data());
    Tensor want = Tensor::Zeros({num_nodes, dout});
    for (int64_t e = 0; e < m; ++e) {
      for (int64_t j = 0; j < dout; ++j) {
        float v = pt[0][src[static_cast<size_t>(e)] * dout + j] * pc[0][e];
        for (int64_t b = 1; b < num_bases; ++b) {
          v += pt[static_cast<size_t>(b)][src[static_cast<size_t>(e)] * dout + j] *
               pc[static_cast<size_t>(b)][e];
        }
        if (pg != nullptr) v *= pg[e];
        want.Data()[dst[static_cast<size_t>(e)] * dout + j] += v;
      }
    }
    ExpectBitEqual(got, want, pg != nullptr ? "gated sweep" : "ungated sweep");
  }
}

TEST(MessageKernelContractTest, AttentionLogitsMatchMatMulOfConcat) {
  const int64_t num_nodes = 10;
  const int64_t din = kLanes + 3;
  const int64_t att_dim = 4;
  const std::vector<int64_t> src = {0, 2, 9, 4};
  const std::vector<int64_t> dst = {1, 1, 3, 8};
  const std::vector<int64_t> rel = {0, 2, 1, 2};
  const std::vector<int64_t> tgt = {1, 1, 0, 0};
  const int64_t m = static_cast<int64_t>(src.size());
  Tensor h = RandomTensor({num_nodes, din}, 1601);
  Tensor rel_emb = RandomTensor({3, att_dim}, 1709);
  Tensor tgt_emb = RandomTensor({2, att_dim}, 1801);
  Tensor w = RandomTensor({2 * din + 2 * att_dim, 1}, 1901);
  const float bias = 0.125f;
  Tensor logits(Shape{m, 1});
  gnn::FusedAttentionLogits(src, dst, rel, tgt, h.Data(), din, rel_emb.Data(),
                            tgt_emb.Data(), att_dim, w.Data(), bias,
                            logits.Data());
  // The autograd formulation: concat the four gathers, MatMul by w.
  Tensor concat = Concat({GatherRows(h, src), GatherRows(h, dst),
                          GatherRows(rel_emb, rel), GatherRows(tgt_emb, tgt)},
                         /*axis=*/1);
  Tensor ref = MatMul(concat, w);
  for (int64_t e = 0; e < m; ++e) {
    EXPECT_EQ(std::bit_cast<uint32_t>(logits.Data()[e]),
              std::bit_cast<uint32_t>(ref.Data()[e] + bias));
  }
}

// A module with one rank-2 "embedding" and one rank-1 bias, for fused
// optimizer checks.
class TwoParamModule : public nn::Module {
 public:
  explicit TwoParamModule(uint64_t seed) {
    Rng rng(seed);
    table = RegisterParameter(
        "table", Tensor::Uniform({12, 2 * kLanes + 3}, -1, 1, &rng));
    bias = RegisterParameter("bias", Tensor::Uniform({5}, -1, 1, &rng));
  }
  ag::Var table;
  ag::Var bias;
};

void SeedGrads(TwoParamModule* mod, uint64_t seed, bool sparse_rows) {
  Rng rng(seed);
  Tensor gt = Tensor::Zeros(mod->table.value().shape());
  for (int64_t r = 0; r < gt.dim(0); ++r) {
    if (sparse_rows && !rng.Bernoulli(0.4f)) continue;
    for (int64_t j = 0; j < gt.dim(1); ++j) {
      gt.At(r, j) = static_cast<float>(rng.UniformDouble(-0.5, 0.5));
    }
  }
  mod->table.impl()->AccumulateGrad(gt);
  Tensor gb = Tensor::Uniform(mod->bias.value().shape(), -0.5f, 0.5f, &rng);
  mod->bias.impl()->AccumulateGrad(gb);
}

// Scalar reference for one optimizer step applied to raw copies of the
// parameter/state tensors, spelled exactly like the historical
// per-parameter loops.
void RefAdamStep(Tensor* w, const Tensor& g, Tensor* m, Tensor* v,
                 const nn::Adam::Options& o, int64_t t) {
  const float b1 = static_cast<float>(o.beta1);
  const float b2 = static_cast<float>(o.beta2);
  const float eps = static_cast<float>(o.eps);
  const float wd = static_cast<float>(o.weight_decay);
  const double bias1 = 1.0 - std::pow(o.beta1, static_cast<double>(t));
  const double bias2 = 1.0 - std::pow(o.beta2, static_cast<double>(t));
  const float lr_t = static_cast<float>(o.lr * std::sqrt(bias2) / bias1);
  for (int64_t j = 0; j < w->numel(); ++j) {
    const float gj = g.Data()[j] + wd * w->Data()[j];
    m->Data()[j] = b1 * m->Data()[j] + (1.0f - b1) * gj;
    v->Data()[j] = b2 * v->Data()[j] + (1.0f - b2) * gj * gj;
    w->Data()[j] -= lr_t * m->Data()[j] / (std::sqrt(v->Data()[j]) + eps);
  }
}

TEST(FusedOptimizerContractTest, AdamMatchesScalarReferenceBitwise) {
  TwoParamModule mod(2027);
  nn::Adam::Options opt;
  opt.lr = 0.01;
  nn::Adam adam(&mod, opt);

  Tensor ref_w_table = mod.table.value().Clone();
  Tensor ref_w_bias = mod.bias.value().Clone();
  Tensor ref_m_table = Tensor::Zeros(ref_w_table.shape());
  Tensor ref_v_table = Tensor::Zeros(ref_w_table.shape());
  Tensor ref_m_bias = Tensor::Zeros(ref_w_bias.shape());
  Tensor ref_v_bias = Tensor::Zeros(ref_w_bias.shape());

  nn::StepSparsity sparsity;
  sparsity.plans.resize(2);
  sparsity.plans[0].mode = nn::StepSparsity::Mode::kAutoRows;

  for (int64_t step = 1; step <= 4; ++step) {
    mod.ZeroGrad();
    // Alternate sparse-gradient and dense-gradient steps.
    SeedGrads(&mod, 3001 + static_cast<uint64_t>(step),
              /*sparse_rows=*/step % 2 == 0);
    RefAdamStep(&ref_w_table, mod.table.grad(), &ref_m_table, &ref_v_table,
                opt, step);
    RefAdamStep(&ref_w_bias, mod.bias.grad(), &ref_m_bias, &ref_v_bias, opt,
                step);
    adam.Step(sparsity);
    ExpectBitEqual(mod.table.value(), ref_w_table, "adam table");
    ExpectBitEqual(mod.bias.value(), ref_w_bias, "adam bias");
  }
}

TEST(FusedOptimizerContractTest, SgdMomentumMatchesScalarReferenceBitwise) {
  TwoParamModule mod(2029);
  nn::Sgd::Options opt;
  opt.lr = 0.05;
  opt.momentum = 0.9;
  nn::Sgd sgd(&mod, opt);

  Tensor ref_w_table = mod.table.value().Clone();
  Tensor ref_w_bias = mod.bias.value().Clone();
  Tensor ref_v_table = Tensor::Zeros(ref_w_table.shape());
  Tensor ref_v_bias = Tensor::Zeros(ref_w_bias.shape());
  const float lr = static_cast<float>(opt.lr);
  const float mu = static_cast<float>(opt.momentum);
  auto ref_step = [&](Tensor* w, const Tensor& g, Tensor* vel) {
    for (int64_t j = 0; j < w->numel(); ++j) {
      const float gj = g.Data()[j];
      vel->Data()[j] = mu * vel->Data()[j] + gj;
      w->Data()[j] -= lr * vel->Data()[j];
    }
  };

  nn::StepSparsity sparsity;
  sparsity.plans.resize(2);
  sparsity.plans[0].mode = nn::StepSparsity::Mode::kAutoRows;

  for (int64_t step = 1; step <= 4; ++step) {
    mod.ZeroGrad();
    SeedGrads(&mod, 4001 + static_cast<uint64_t>(step),
              /*sparse_rows=*/step % 2 == 1);
    ref_step(&ref_w_table, mod.table.grad(), &ref_v_table);
    ref_step(&ref_w_bias, mod.bias.grad(), &ref_v_bias);
    sgd.Step(sparsity);
    ExpectBitEqual(mod.table.value(), ref_w_table, "sgd table");
    ExpectBitEqual(mod.bias.value(), ref_w_bias, "sgd bias");
  }
}

// Bit-level fingerprint over a battery of kernel outputs. Running this
// binary from builds at different optimization levels and diffing the
// emitted file (DEKG_KERNEL_FINGERPRINT=<path>) proves -O0/-O3 bitwise
// invariance — scripts/sanitize_check.sh wires that up.
TEST(KernelFingerprintTest, EmitsStableFingerprint) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&hash](const float* p, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      hash ^= std::bit_cast<uint32_t>(p[i]);
      hash *= 1099511628211ull;
    }
  };
  Tensor a = RandomTensor({33, 67}, 5001);
  Tensor b = RandomTensor({67, 41}, 5003);
  Tensor col = RandomTensor({67, 1}, 5007);
  Tensor mm = MatMul(a, b);
  mix(mm.Data(), mm.numel());
  Tensor dotcol = MatMul(a, col);
  mix(dotcol.Data(), dotcol.numel());
  Tensor sums = SumRows(a);
  mix(sums.Data(), sums.numel());
  Tensor norms = RowNorms(a);
  mix(norms.Data(), norms.numel());
  const float d = Dot(b, RandomTensor({67, 41}, 5011));
  mix(&d, 1);
  TwoParamModule mod(5013);
  nn::Adam::Options opt;
  opt.lr = 0.01;
  nn::Adam adam(&mod, opt);
  for (int64_t step = 1; step <= 2; ++step) {
    mod.ZeroGrad();
    SeedGrads(&mod, 5017 + static_cast<uint64_t>(step), step == 2);
    adam.Step();
  }
  mix(mod.table.value().Data(), mod.table.value().numel());

  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx\n",
                static_cast<unsigned long long>(hash));
  RecordProperty("fingerprint", buf);
  const char* path = std::getenv("DEKG_KERNEL_FINGERPRINT");
  if (path != nullptr && *path != '\0') {
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr) << path;
    std::fputs(buf, f);
    std::fclose(f);
  }
  SUCCEED() << "kernel fingerprint " << buf;
}

}  // namespace
}  // namespace dekg
