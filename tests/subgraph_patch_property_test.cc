// Property tests for the ingest-patch substrate (DESIGN.md §13):
// RelaxDistancesAfterEdgeInsert + BuildSubgraphFromLabels against the
// ground truth of fresh extraction, over random graphs × random edge
// insertion batches.
//
// Two properties are non-negotiable:
//  * Exactness — when relaxation claims "patchable" (both fields return
//    true), the patched labels equal the fresh blocked-BFS fields
//    restricted to the touched set, and the rebuilt subgraph is
//    bit-identical to a fresh extraction. The membership-change predicate
//    never falsely claims patchable.
//  * Completeness — when the touched union set is unchanged, relaxation
//    must succeed (fallback only fires on real membership changes).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "graph/subgraph.h"

namespace dekg {
namespace {

struct RandomCase {
  KnowledgeGraph graph;  // dynamic, already containing the new edges
  std::vector<Triple> new_edges;
  EntityId head = 0;
  EntityId tail = 0;
};

// A random sparse base graph with a random target pair, plus a random
// batch of appended edges. Entity ids stay in range (emerging entities
// are a serve-layer concern; here the id space is fixed) but isolated
// entities and duplicate edges arise naturally from the sampling.
RandomCase MakeCase(uint64_t seed, int32_t num_entities, int32_t num_edges,
                    int32_t num_new) {
  Rng rng(seed);
  const int32_t num_relations = 4;
  RandomCase c{KnowledgeGraph(num_entities, num_relations), {}, 0, 0};
  for (int32_t i = 0; i < num_edges; ++i) {
    c.graph.AddTriple(
        Triple{static_cast<EntityId>(rng.UniformInt(0, num_entities - 1)),
               static_cast<RelationId>(rng.UniformInt(0, num_relations - 1)),
               static_cast<EntityId>(rng.UniformInt(0, num_entities - 1))});
  }
  c.graph.Build();
  c.graph.BeginDynamic();
  c.head = static_cast<EntityId>(rng.UniformInt(0, num_entities - 1));
  do {
    c.tail = static_cast<EntityId>(rng.UniformInt(0, num_entities - 1));
  } while (c.tail == c.head);
  for (int32_t i = 0; i < num_new; ++i) {
    const Triple t{static_cast<EntityId>(rng.UniformInt(0, num_entities - 1)),
                   static_cast<RelationId>(rng.UniformInt(0, num_relations - 1)),
                   static_cast<EntityId>(rng.UniformInt(0, num_entities - 1))};
    c.new_edges.push_back(t);
    c.graph.AddTripleDynamic(t);
  }
  return c;
}

// The fresh blocked-BFS field restricted to `entities`.
std::vector<int32_t> FreshRestricted(const KnowledgeGraph& g, EntityId source,
                                     EntityId blocked, int32_t max_depth,
                                     const std::vector<EntityId>& entities) {
  const std::vector<int32_t> full = BfsDistances(g, source, blocked, max_depth);
  std::vector<int32_t> out;
  for (EntityId e : entities) out.push_back(full[static_cast<size_t>(e)]);
  return out;
}

// Whether the fresh touched union set equals `entities` (distances only
// decrease under edge insertion, so the old set is always a subset; the
// sets differ iff some outside entity entered a t-hop ball).
bool SameUnionSet(const KnowledgeGraph& g, EntityId head, EntityId tail,
                  int32_t max_depth, const std::vector<EntityId>& entities) {
  const std::vector<int32_t> dh = BfsDistances(g, head, tail, max_depth);
  const std::vector<int32_t> dt = BfsDistances(g, tail, head, max_depth);
  std::vector<EntityId> fresh;
  for (int32_t e = 0; e < g.num_entities(); ++e) {
    if (dh[static_cast<size_t>(e)] >= 0 || dt[static_cast<size_t>(e)] >= 0) {
      fresh.push_back(e);
    }
  }
  return fresh == entities;
}

void ExpectSameSubgraph(const Subgraph& a, const Subgraph& b,
                        uint64_t seed) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << "case " << seed;
  ASSERT_EQ(a.edges.size(), b.edges.size()) << "case " << seed;
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].entity, b.nodes[i].entity) << "case " << seed;
    EXPECT_EQ(a.nodes[i].dist_head, b.nodes[i].dist_head) << "case " << seed;
    EXPECT_EQ(a.nodes[i].dist_tail, b.nodes[i].dist_tail) << "case " << seed;
  }
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src) << "case " << seed;
    EXPECT_EQ(a.edges[i].rel, b.edges[i].rel) << "case " << seed;
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst) << "case " << seed;
  }
}

void RunRandomCases(const SubgraphConfig& config, int32_t num_entities,
                    int32_t num_edges, int32_t num_new, uint64_t seed_base,
                    int32_t cases, int32_t* patchable_seen,
                    int32_t* fallback_seen) {
  for (int32_t k = 0; k < cases; ++k) {
    const uint64_t seed = MixSeed(seed_base, static_cast<uint64_t>(k));
    RandomCase c = MakeCase(seed, num_entities, num_edges, num_new);

    // Labels as they stood before the new edges: rebuild the base graph
    // statically (cheaper than snapshotting; the edge batch is the same).
    KnowledgeGraph base(num_entities, c.graph.num_relations());
    {
      std::vector<Triple> triples = c.graph.Triples();
      triples.resize(triples.size() - c.new_edges.size());
      for (const Triple& t : triples) base.AddTriple(t);
      base.Build();
    }
    SubgraphWorkspace workspace;
    ExtractSubgraph(base, c.head, c.tail, /*target_rel=*/0, config,
                    &workspace);
    TouchedLabels labels = TouchedEntityLabels(workspace);

    bool head_changed = false;
    bool tail_changed = false;
    const bool ok_head = RelaxDistancesAfterEdgeInsert(
        c.graph, c.head, c.tail, config.num_hops, c.new_edges,
        labels.entities, &labels.dist_head, &head_changed);
    const bool ok_tail =
        ok_head && RelaxDistancesAfterEdgeInsert(
                       c.graph, c.tail, c.head, config.num_hops, c.new_edges,
                       labels.entities, &labels.dist_tail, &tail_changed);
    const bool claimed = ok_head && ok_tail;
    const bool actual =
        SameUnionSet(c.graph, c.head, c.tail, config.num_hops,
                     labels.entities);
    // Exactness AND completeness of the membership predicate. (When
    // ok_head already failed, the union set grew, so `actual` is false
    // and the short-circuited ok_tail cannot disagree.)
    ASSERT_EQ(claimed, actual) << "case " << seed;

    if (!claimed) {
      ++*fallback_seen;
      continue;
    }
    ++*patchable_seen;
    // Patched fields == fresh fields restricted to the touched set.
    EXPECT_EQ(labels.dist_head,
              FreshRestricted(c.graph, c.head, c.tail, config.num_hops,
                              labels.entities))
        << "case " << seed;
    EXPECT_EQ(labels.dist_tail,
              FreshRestricted(c.graph, c.tail, c.head, config.num_hops,
                              labels.entities))
        << "case " << seed;
    // The changed flags must be exact, not merely conservative: the
    // differential engine counts patched vs repaired from them.
    TouchedLabels before = TouchedEntityLabels(workspace);
    EXPECT_EQ(head_changed, labels.dist_head != before.dist_head)
        << "case " << seed;
    EXPECT_EQ(tail_changed, labels.dist_tail != before.dist_tail)
        << "case " << seed;
    // Rebuild-from-labels == fresh extraction, node for node, edge for
    // edge — the bit-identity the serving cache patch relies on.
    const Subgraph rebuilt = BuildSubgraphFromLabels(
        c.graph, c.head, c.tail, /*target_rel=*/0, config, labels);
    const Subgraph fresh =
        ExtractSubgraph(c.graph, c.head, c.tail, /*target_rel=*/0, config);
    ExpectSameSubgraph(rebuilt, fresh, seed);
  }
}

TEST(SubgraphPatchPropertyTest, ImprovedLabelingRandomInsertions) {
  SubgraphConfig config;  // kImproved, 2 hops, max_nodes 256
  int32_t patchable = 0, fallback = 0;
  RunRandomCases(config, /*num_entities=*/40, /*num_edges=*/70,
                 /*num_new=*/3, /*seed_base=*/11, /*cases=*/120, &patchable,
                 &fallback);
  // The sweep must actually exercise both outcomes.
  EXPECT_GT(patchable, 0);
  EXPECT_GT(fallback, 0);
}

TEST(SubgraphPatchPropertyTest, GrailLabelingRandomInsertions) {
  SubgraphConfig config;
  config.labeling = NodeLabeling::kGrail;
  int32_t patchable = 0, fallback = 0;
  RunRandomCases(config, /*num_entities=*/40, /*num_edges=*/70,
                 /*num_new=*/3, /*seed_base=*/13, /*cases=*/120, &patchable,
                 &fallback);
  EXPECT_GT(patchable, 0);
  EXPECT_GT(fallback, 0);
}

TEST(SubgraphPatchPropertyTest, ThreeHopsWithBindingNodeCap) {
  // Deeper neighborhoods on a denser graph with a small max_nodes: the
  // cap binds, so rebuild must reproduce the exact same kept prefix.
  SubgraphConfig config;
  config.num_hops = 3;
  config.max_nodes = 12;
  int32_t patchable = 0, fallback = 0;
  RunRandomCases(config, /*num_entities=*/30, /*num_edges=*/90,
                 /*num_new=*/4, /*seed_base=*/17, /*cases=*/80, &patchable,
                 &fallback);
  EXPECT_GT(patchable, 0);
  EXPECT_GT(fallback, 0);
}

TEST(SubgraphPatchPropertyTest, DuplicateEdgesNeverChangeLabels) {
  // Re-ingesting edges already present cannot move any distance: the
  // relaxation must succeed with changed == false, and the rebuilt
  // subgraph must reflect the raised edge multiplicity.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RandomCase c = MakeCase(MixSeed(29, seed), /*num_entities=*/25,
                            /*num_edges=*/50, /*num_new=*/0);
    SubgraphConfig config;
    SubgraphWorkspace workspace;
    ExtractSubgraph(c.graph, c.head, c.tail, /*target_rel=*/0, config,
                    &workspace);
    TouchedLabels labels = TouchedEntityLabels(workspace);

    // Duplicate three existing edges.
    Rng rng(MixSeed(31, seed));
    std::vector<Triple> dup_batch;
    const std::vector<Triple> existing = c.graph.Triples();
    for (int32_t i = 0; i < 3; ++i) {
      const Triple t = existing[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(existing.size()) - 1))];
      dup_batch.push_back(t);
      c.graph.AddTripleDynamic(t);
    }

    bool head_changed = false;
    bool tail_changed = false;
    ASSERT_TRUE(RelaxDistancesAfterEdgeInsert(
        c.graph, c.head, c.tail, config.num_hops, dup_batch, labels.entities,
        &labels.dist_head, &head_changed))
        << "seed " << seed;
    ASSERT_TRUE(RelaxDistancesAfterEdgeInsert(
        c.graph, c.tail, c.head, config.num_hops, dup_batch, labels.entities,
        &labels.dist_tail, &tail_changed))
        << "seed " << seed;
    EXPECT_FALSE(head_changed) << "seed " << seed;
    EXPECT_FALSE(tail_changed) << "seed " << seed;
    const Subgraph rebuilt = BuildSubgraphFromLabels(
        c.graph, c.head, c.tail, /*target_rel=*/0, config, labels);
    const Subgraph fresh =
        ExtractSubgraph(c.graph, c.head, c.tail, /*target_rel=*/0, config);
    ExpectSameSubgraph(rebuilt, fresh, seed);
  }
}

TEST(SubgraphPatchPropertyTest, BoundaryCrossingEdgeForcesFallback) {
  // A path graph 0-1-2-...-7 with target (0, 2): with t = 2 the touched
  // union is {0,1,2,3,4}. An edge 4-5 pulls 5 into the tail ball —
  // membership change, so relaxation must refuse. An edge 1-3 only
  // shortens in-set distances — it must patch.
  KnowledgeGraph g(8, 1);
  for (EntityId e = 0; e + 1 < 8; ++e) g.AddTriple(Triple{e, 0, e + 1});
  g.Build();
  g.BeginDynamic();

  SubgraphConfig config;
  SubgraphWorkspace workspace;
  ExtractSubgraph(g, 0, 2, /*target_rel=*/0, config, &workspace);
  const TouchedLabels labels = TouchedEntityLabels(workspace);
  ASSERT_EQ(labels.entities, (std::vector<EntityId>{0, 1, 2, 3, 4}));

  // In-set shortcut: patchable, and the head field actually improves
  // (d(0,3) drops from 3 via 0-1, 1-3... with tail 2 blocked).
  {
    KnowledgeGraph shortcut = g;  // value copy: independent dynamic graph
    const Triple t{1, 0, 3};
    shortcut.AddTripleDynamic(t);
    TouchedLabels patched = labels;
    bool head_changed = false;
    bool tail_changed = false;
    EXPECT_TRUE(RelaxDistancesAfterEdgeInsert(shortcut, 0, 2, config.num_hops,
                                              {t}, patched.entities,
                                              &patched.dist_head,
                                              &head_changed));
    EXPECT_TRUE(RelaxDistancesAfterEdgeInsert(shortcut, 2, 0, config.num_hops,
                                              {t}, patched.entities,
                                              &patched.dist_tail,
                                              &tail_changed));
    EXPECT_TRUE(head_changed) << "d(0,3) avoiding 2 drops 3 -> 2";
    ExpectSameSubgraph(
        BuildSubgraphFromLabels(shortcut, 0, 2, 0, config, patched),
        ExtractSubgraph(shortcut, 0, 2, 0, config), /*seed=*/0);
  }

  // Edge at the ball boundary: 4 sits at tail distance exactly t, so a
  // new neighbor 5 would land at t + 1 — still outside. Patchable, and
  // no label moves (the predicate must not be merely conservative).
  {
    KnowledgeGraph boundary = g;
    const Triple t{4, 0, 5};
    boundary.AddTripleDynamic(t);
    TouchedLabels patched = labels;
    bool head_changed = false;
    bool tail_changed = false;
    EXPECT_TRUE(RelaxDistancesAfterEdgeInsert(boundary, 0, 2, config.num_hops,
                                              {t}, patched.entities,
                                              &patched.dist_head,
                                              &head_changed));
    EXPECT_TRUE(RelaxDistancesAfterEdgeInsert(boundary, 2, 0, config.num_hops,
                                              {t}, patched.entities,
                                              &patched.dist_tail,
                                              &tail_changed));
    EXPECT_FALSE(head_changed);
    EXPECT_FALSE(tail_changed);
  }

  // Boundary-crossing edge: 3 sits at tail distance 1, so 5 enters the
  // tail ball at distance 2 — membership change, the tail field must
  // refuse (the head field never reaches 3 and legitimately succeeds).
  {
    const Triple t{3, 0, 5};
    g.AddTripleDynamic(t);
    TouchedLabels patched = labels;
    bool changed = false;
    EXPECT_TRUE(RelaxDistancesAfterEdgeInsert(g, 0, 2, config.num_hops, {t},
                                              patched.entities,
                                              &patched.dist_head, &changed));
    EXPECT_FALSE(RelaxDistancesAfterEdgeInsert(g, 2, 0, config.num_hops, {t},
                                               patched.entities,
                                               &patched.dist_tail, &changed));
  }
}

}  // namespace
}  // namespace dekg
