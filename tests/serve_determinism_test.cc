// Acceptance criterion of the serving subsystem (DESIGN.md §9): in
// deterministic mode the server's scores and ranks are bit-identical to
// offline Evaluate at any thread count and any micro-batch size. Covered
// at three levels — engine vs offline predictor, micro-batch composition
// invariance, and the full in-process TCP stack (server + client) —
// plus the EvalConfig::subgraph_cache read-only handle the serve layer
// shares with the offline evaluator.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dekg_ilp.h"
#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"
#include "graph/subgraph.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace dekg::serve {
namespace {

DekgDataset SyntheticDataset() {
  datagen::SchemaConfig schema;
  schema.num_types = 5;
  schema.num_relations = 14;
  schema.num_entities = 160;
  datagen::SplitConfig split;
  split.max_test_links = 40;
  return datagen::MakeDekgDataset("serve", schema, split, /*seed=*/21);
}

core::DekgIlpConfig SmallModelConfig(int32_t num_relations) {
  core::DekgIlpConfig config;
  config.num_relations = num_relations;
  config.dim = 8;
  return config;
}

std::vector<Triple> TestTriples(const DekgDataset& dataset, size_t limit) {
  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    triples.push_back(link.triple);
    if (triples.size() >= limit) break;
  }
  return triples;
}

std::vector<ScoreItem> ItemsFor(const std::vector<Triple>& triples,
                                uint64_t request_seed = 123) {
  std::vector<ScoreItem> items;
  for (size_t i = 0; i < triples.size(); ++i) {
    items.push_back({triples[i], MixSeed(request_seed, i)});
  }
  return items;
}

TEST(ServeDeterminismTest, EngineMatchesOfflinePredictorAtAnyThreadCount) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 16);
  ASSERT_GE(triples.size(), 8u);

  // Offline reference: the evaluator's predictor on the static graph.
  core::DekgIlpPredictor predictor(&model);
  std::vector<double> offline =
      predictor.ScoreTriples(dataset.inference_graph(), triples);

  for (int threads : {1, 8}) {
    SetDefaultThreadCount(threads);
    // Memo off: this test pins the subgraph-cache warm path (the memo
    // would replay the second pass without touching the cache).
    EngineConfig config;
    config.score_memo_capacity = 0;
    InferenceEngine engine(&model, dataset.inference_graph(), config);
    std::vector<double> online = engine.ScoreBatch(ItemsFor(triples));
    // Second pass is served from the subgraph cache — still identical.
    std::vector<double> cached = engine.ScoreBatch(ItemsFor(triples));
    SetDefaultThreadCount(0);

    ASSERT_EQ(online.size(), offline.size());
    for (size_t i = 0; i < offline.size(); ++i) {
      EXPECT_EQ(online[i], offline[i]) << "threads " << threads << " triple "
                                       << i;
      EXPECT_EQ(cached[i], offline[i]) << "threads " << threads
                                       << " cached triple " << i;
    }
    EXPECT_EQ(engine.Stats().cache_hits, triples.size());
  }
}

TEST(ServeDeterminismTest, ScoreMemoReplaysBitwiseAndFlushesOnEpochAdvance) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 12);
  ASSERT_GE(triples.size(), 8u);

  InferenceEngine engine(&model, dataset.original_graph(), EngineConfig{});
  const std::vector<double> first = engine.ScoreBatch(ItemsFor(triples));
  const std::vector<double> replay = engine.ScoreBatch(ItemsFor(triples));
  ASSERT_EQ(replay.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(replay[i], first[i]) << "triple " << i;
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.memo_misses, triples.size());
  EXPECT_EQ(stats.memo_hits, triples.size());
  EXPECT_EQ(stats.memo_entries, triples.size());
  // The replay short-circuited the pipeline: the subgraph cache was
  // never read again.
  EXPECT_EQ(stats.cache_hits, 0u);

  // A different request seed derives different item streams — memo
  // misses that fall through to the (now warm) subgraph cache.
  (void)engine.ScoreBatch(ItemsFor(triples, /*request_seed=*/321));
  stats = engine.Stats();
  EXPECT_EQ(stats.memo_misses, 2 * triples.size());
  EXPECT_EQ(stats.cache_hits, triples.size());

  // An epoch advance flushes the memo: post-ingest scores must be the
  // fresh-graph bits, not stale replays.
  IngestResponse response;
  engine.Ingest(dataset.emerging_triples(), &response);
  ASSERT_EQ(response.status, Status::kOk) << response.error;
  EXPECT_EQ(engine.Stats().memo_entries, 0u);
  const std::vector<double> after = engine.ScoreBatch(ItemsFor(triples));
  InferenceEngine fresh(&model, dataset.inference_graph(), EngineConfig{});
  const std::vector<double> reference = fresh.ScoreBatch(ItemsFor(triples));
  ASSERT_EQ(after.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(after[i], reference[i]) << "post-ingest triple " << i;
  }

  // Bounded: at capacity nothing further is memoized (and nothing is
  // evicted), so exactly the first `capacity` stream items replay.
  EngineConfig small;
  small.score_memo_capacity = 4;
  InferenceEngine bounded(&model, dataset.inference_graph(), small);
  (void)bounded.ScoreBatch(ItemsFor(triples));
  (void)bounded.ScoreBatch(ItemsFor(triples));
  stats = bounded.Stats();
  EXPECT_EQ(stats.memo_entries, 4u);
  EXPECT_EQ(stats.memo_hits, 4u);
}

TEST(ServeDeterminismTest, ScoresAreInvariantToMicroBatchComposition) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  InferenceEngine engine(&model, dataset.inference_graph(), EngineConfig{});
  std::vector<Triple> triples = TestTriples(dataset, 12);
  ASSERT_GE(triples.size(), 8u);

  // Whole request in one engine batch.
  std::vector<double> whole = engine.ScoreBatch(ItemsFor(triples));

  // Same request packed into uneven micro-batches (1, 3, 5, rest) — the
  // seeds are per request index, so the split must not matter, even
  // though the cache is now warm in between.
  std::vector<ScoreItem> items = ItemsFor(triples);
  std::vector<double> split;
  size_t offset = 0;
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{5},
                       triples.size() - 9}) {
    std::vector<ScoreItem> part(items.begin() + static_cast<int64_t>(offset),
                                items.begin() +
                                    static_cast<int64_t>(offset + chunk));
    std::vector<double> scores = engine.ScoreBatch(part);
    split.insert(split.end(), scores.begin(), scores.end());
    offset += chunk;
  }
  ASSERT_EQ(offset, triples.size());
  ASSERT_EQ(split.size(), whole.size());
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(split[i], whole[i]) << "triple " << i;
  }
}

TEST(ServeDeterminismTest, BatcherPacksAndAnswersEveryRequest) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  Router router(&model, dataset.inference_graph(), RouterConfig{});
  std::vector<Triple> triples = TestTriples(dataset, 8);
  ASSERT_GE(triples.size(), 4u);

  BatcherConfig config;
  config.max_batch_triples = 4;  // forces multiple micro-batches
  MicroBatcher batcher(&router, config);

  // One single-triple request per triple, all queued before the first
  // response is consumed, so the scheduler actually packs them.
  std::vector<std::future<ScoreResponse>> futures;
  for (size_t i = 0; i < triples.size(); ++i) {
    ScoreRequest request;
    request.seed = MixSeed(123, i);
    request.triples = {triples[i]};
    futures.push_back(batcher.SubmitScore(std::move(request)));
  }
  // Collect everything before touching the engine from this thread: the
  // scheduler owns the engine while work is in flight.
  std::vector<ScoreResponse> responses;
  for (std::future<ScoreResponse>& future : futures) {
    responses.push_back(future.get());
  }
  // Stats flow through the queue and see a consistent snapshot (and the
  // barrier guarantees the scheduler is past all scoring work).
  StatsResponse stats = batcher.SubmitStats().get();
  EXPECT_EQ(stats.requests_admitted, triples.size());
  EXPECT_GT(stats.batches_scored, 0u);
  EXPECT_EQ(stats.triples_scored, triples.size());
  EXPECT_EQ(stats.latency_samples, triples.size());  // one per answered
                                                     // score request
  for (size_t i = 0; i < responses.size(); ++i) {
    const ScoreResponse& response = responses[i];
    ASSERT_EQ(response.status, Status::kOk) << response.error;
    ASSERT_EQ(response.scores.size(), 1u);
    // The batcher derives the item stream as MixSeed(request.seed, 0),
    // not request.seed itself — compare against a direct engine run.
    std::vector<double> direct =
        router.ScoreBatch({{triples[i], MixSeed(MixSeed(123, i), 0)}});
    EXPECT_EQ(response.scores[0], direct[0]) << "request " << i;
  }

  batcher.Drain();
  // Post-drain admission is rejected with kShuttingDown, not queued.
  ScoreRequest late;
  late.triples = {triples[0]};
  EXPECT_EQ(batcher.SubmitScore(std::move(late)).get().status,
            Status::kShuttingDown);
  EXPECT_EQ(batcher.SubmitIngest(IngestRequest{}).get().status,
            Status::kShuttingDown);
}

TEST(ServeDeterminismTest, ServerScoresBitIdenticalToOfflineOverTcp) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 12);
  ASSERT_GE(triples.size(), 4u);

  core::DekgIlpPredictor predictor(&model);
  std::vector<double> offline =
      predictor.ScoreTriples(dataset.inference_graph(), triples);

  Router router(&model, dataset.inference_graph(), RouterConfig{});
  MicroBatcher batcher(&router, BatcherConfig{});
  ScoringServer server(&batcher, ServerConfig{});  // ephemeral port
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

    // One request carrying all triples: item i scores with
    // MixSeed(123, i), exactly the offline predictor's stream.
    ScoreRequest request;
    request.with_rank = true;
    request.triples = triples;
    ScoreResponse response;
    ASSERT_TRUE(client.Score(request, &response, &error)) << error;
    ASSERT_EQ(response.status, Status::kOk) << response.error;
    ASSERT_EQ(response.scores.size(), offline.size());
    for (size_t i = 0; i < offline.size(); ++i) {
      EXPECT_EQ(response.scores[i], offline[i]) << "triple " << i;
    }
    // The served rank is RankOf over the same scores — so it must equal
    // RankOf computed from the offline reference.
    ASSERT_TRUE(response.has_rank);
    std::vector<double> negatives(offline.begin() + 1, offline.end());
    EXPECT_EQ(response.rank, RankOf(offline[0], negatives));

    // Application-level rejections come back as kOk transport + status.
    ScoreRequest bad;
    bad.triples = {{0, dataset.num_relations() + 5, 1}};
    ASSERT_TRUE(client.Score(bad, &response, &error)) << error;
    EXPECT_EQ(response.status, Status::kUnknownRelation);
    ASSERT_TRUE(client.Score(ScoreRequest{}, &response, &error)) << error;
    EXPECT_EQ(response.status, Status::kBadRequest);

    StatsResponse stats;
    ASSERT_TRUE(client.Stats(&stats, &error)) << error;
    EXPECT_EQ(stats.graph_triples,
              static_cast<uint64_t>(dataset.inference_graph().num_triples()));
    EXPECT_GT(stats.batches_scored, 0u);
  }

  server.RequestStop();
  server.Wait();
}

TEST(ServeDeterminismTest, LiveIngestionConvergesToOfflineOverTcp) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 8);
  ASSERT_GE(triples.size(), 4u);

  core::DekgIlpPredictor predictor(&model);
  std::vector<double> offline =
      predictor.ScoreTriples(dataset.inference_graph(), triples);

  // Server starts WITHOUT the emerging structure (train graph only).
  Router router(&model, dataset.original_graph(), RouterConfig{});
  MicroBatcher batcher(&router, BatcherConfig{});
  ScoringServer server(&batcher, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

    ScoreRequest request;
    request.triples = triples;
    ScoreResponse before;
    ASSERT_TRUE(client.Score(request, &before, &error)) << error;
    ASSERT_EQ(before.status, Status::kOk) << before.error;

    // Stream the emerging triples in file order, in two chunks.
    const std::vector<Triple>& emerging = dataset.emerging_triples();
    const size_t half = emerging.size() / 2;
    const std::vector<std::pair<size_t, size_t>> chunks = {
        {0, half}, {half, emerging.size()}};
    for (const auto& [begin, end] : chunks) {
      IngestRequest ingest;
      ingest.triples.assign(emerging.begin() + static_cast<int64_t>(begin),
                            emerging.begin() + static_cast<int64_t>(end));
      IngestResponse ingested;
      ASSERT_TRUE(client.Ingest(ingest, &ingested, &error)) << error;
      ASSERT_EQ(ingested.status, Status::kOk) << ingested.error;
      EXPECT_EQ(ingested.accepted, end - begin);
    }

    // Post-ingest the live graph equals the offline inference graph, so
    // the same request now scores bit-identically to offline — including
    // entries the pre-ingest pass left in the cache (they were either
    // invalidated or provably unaffected).
    ScoreResponse after;
    ASSERT_TRUE(client.Score(request, &after, &error)) << error;
    ASSERT_EQ(after.status, Status::kOk) << after.error;
    ASSERT_EQ(after.scores.size(), offline.size());
    bool any_changed = false;
    for (size_t i = 0; i < offline.size(); ++i) {
      EXPECT_EQ(after.scores[i], offline[i]) << "triple " << i;
      any_changed = any_changed || (before.scores[i] != after.scores[i]);
    }
    // Sanity: the ingest actually mattered for at least one test link.
    EXPECT_TRUE(any_changed);

    ASSERT_TRUE(client.Shutdown(&error)) << error;
  }
  server.Wait();
}

TEST(ServeDeterminismTest, InterleavedIngestScoringMatchesStaticOracle) {
  // Scoring interleaves *between* ingest batches over TCP, so the cache
  // is warm at every ingest and the in-place patch path actually runs.
  // After each chunk the live graph must equal a statically built graph
  // over the same triple multiset (the dynamic-append ordering
  // invariant), so every interleaved score must be bit-identical to the
  // offline predictor on that static oracle.
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 16);
  ASSERT_GE(triples.size(), 4u);

  Router router(&model, dataset.original_graph(), RouterConfig{});
  MicroBatcher batcher(&router, BatcherConfig{});
  ScoringServer server(&batcher, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

    core::DekgIlpPredictor predictor(&model);
    ScoreRequest request;
    request.triples = triples;

    // Warm the cache before the first ingest.
    ScoreResponse warm;
    ASSERT_TRUE(client.Score(request, &warm, &error)) << error;
    ASSERT_EQ(warm.status, Status::kOk) << warm.error;

    const std::vector<Triple>& emerging = dataset.emerging_triples();
    std::vector<Triple> prefix = dataset.original_graph().Triples();
    // Small chunks: each ingest touches few entities, so some warm
    // entries are patchable (big batches change membership everywhere).
    const size_t num_chunks = 24;
    const size_t chunk = (emerging.size() + num_chunks - 1) / num_chunks;
    uint64_t maintained = 0;
    for (size_t begin = 0; begin < emerging.size(); begin += chunk) {
      const size_t end = std::min(emerging.size(), begin + chunk);
      IngestRequest ingest;
      ingest.triples.assign(emerging.begin() + static_cast<int64_t>(begin),
                            emerging.begin() + static_cast<int64_t>(end));
      IngestResponse ingested;
      ASSERT_TRUE(client.Ingest(ingest, &ingested, &error)) << error;
      ASSERT_EQ(ingested.status, Status::kOk) << ingested.error;
      maintained += ingested.patched + ingested.repaired;

      prefix.insert(prefix.end(), ingest.triples.begin(),
                    ingest.triples.end());
      const KnowledgeGraph oracle =
          BuildGraph(dataset.inference_graph().num_entities(),
                     dataset.num_relations(), prefix);
      const std::vector<double> offline =
          predictor.ScoreTriples(oracle, triples);

      ScoreResponse response;
      ASSERT_TRUE(client.Score(request, &response, &error)) << error;
      ASSERT_EQ(response.status, Status::kOk) << response.error;
      ASSERT_EQ(response.scores.size(), offline.size());
      for (size_t i = 0; i < offline.size(); ++i) {
        EXPECT_EQ(response.scores[i], offline[i])
            << "chunk [" << begin << ", " << end << ") triple " << i;
      }
    }
    // The patch path must have actually maintained warm entries (not
    // fallen back on every single key).
    EXPECT_GT(maintained, 0u);

    StatsResponse stats;
    ASSERT_TRUE(client.Stats(&stats, &error)) << error;
    EXPECT_EQ(stats.cache_patched + stats.cache_repaired, maintained);
    EXPECT_EQ(stats.graph_triples,
              static_cast<uint64_t>(dataset.inference_graph().num_triples()));

    ASSERT_TRUE(client.Shutdown(&error)) << error;
  }
  server.Wait();
}

TEST(ServeDeterminismTest, PipelinedScoresMatchSingleRequestBitwise) {
  // Protocol v3 pipelining: the same logical request split into chunks
  // with index_offset, sent with several responses outstanding, must
  // come back bit-identical to the one-frame form — the index_offset
  // keeps every triple's Rng stream at its logical position no matter
  // how the client slices the batch.
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 16);
  ASSERT_GE(triples.size(), 8u);

  Router router(&model, dataset.inference_graph(), RouterConfig{});
  MicroBatcher batcher(&router, BatcherConfig{});
  ScoringServer server(&batcher, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

    ScoreRequest whole;
    whole.seed = 123;
    whole.triples = triples;
    ScoreResponse reference;
    ASSERT_TRUE(client.Score(whole, &reference, &error)) << error;
    ASSERT_EQ(reference.status, Status::kOk) << reference.error;
    ASSERT_EQ(reference.scores.size(), triples.size());

    for (size_t depth : {size_t{1}, size_t{4}, size_t{16}}) {
      // Uneven chunking on purpose: 3-triple chunks over 16 triples.
      std::vector<ScoreRequest> requests;
      for (size_t begin = 0; begin < triples.size(); begin += 3) {
        const size_t end = std::min(triples.size(), begin + 3);
        ScoreRequest request;
        request.request_id = requests.size() + 1;
        request.seed = 123;
        request.index_offset = begin;
        request.triples.assign(
            triples.begin() + static_cast<int64_t>(begin),
            triples.begin() + static_cast<int64_t>(end));
        requests.push_back(std::move(request));
      }
      std::vector<ScoreResponse> responses;
      ASSERT_TRUE(client.ScorePipelined(requests, depth, &responses, &error))
          << "depth " << depth << ": " << error;
      std::vector<double> merged;
      for (size_t r = 0; r < responses.size(); ++r) {
        ASSERT_EQ(responses[r].status, Status::kOk) << responses[r].error;
        EXPECT_EQ(responses[r].request_id, requests[r].request_id);
        merged.insert(merged.end(), responses[r].scores.begin(),
                      responses[r].scores.end());
      }
      ASSERT_EQ(merged.size(), reference.scores.size());
      for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i], reference.scores[i])
            << "depth " << depth << " triple " << i;
      }
    }
    ASSERT_TRUE(client.Shutdown(&error)) << error;
  }
  server.Wait();
}

namespace {

int CountOpenFds() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count - 1;  // exclude the directory's own fd (".", ".." cancel
                     // against the opendir handle miscount harmlessly —
                     // only deltas matter below)
}

}  // namespace

TEST(ServeDeterminismTest, KillMidPipelineLeavesServerServingAndLeaksNoFds) {
  // A client that vanishes with a full pipeline in flight must take down
  // only its own connection: pending futures drain, both connection
  // threads exit, the fd is closed (no leak), and a second connection is
  // served bit-identically.
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  std::vector<Triple> triples = TestTriples(dataset, 8);
  ASSERT_GE(triples.size(), 4u);

  Router router(&model, dataset.inference_graph(), RouterConfig{});
  MicroBatcher batcher(&router, BatcherConfig{});
  ScoringServer server(&batcher, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int baseline_fds = CountOpenFds();
  ASSERT_GT(baseline_fds, 0);

  {
    // Victim: submit a deep pipeline, read nothing, vanish.
    Client victim;
    ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), &error)) << error;
    for (size_t i = 0; i < 32; ++i) {
      ScoreRequest request;
      request.request_id = i + 1;
      request.seed = 123;
      request.index_offset = i % triples.size();
      request.triples = {triples[i % triples.size()]};
      ASSERT_TRUE(victim.SendScore(request, &error)) << error;
    }
    victim.Close();  // mid-pipeline: all 32 responses still owed
  }

  // A fresh connection is served normally while (and after) the
  // victim's connection winds down.
  {
    Client survivor;
    ASSERT_TRUE(survivor.Connect("127.0.0.1", server.port(), &error)) << error;
    ScoreRequest request;
    request.seed = 123;
    request.triples = triples;
    ScoreResponse response;
    ASSERT_TRUE(survivor.Score(request, &response, &error)) << error;
    ASSERT_EQ(response.status, Status::kOk) << response.error;
    // Compare against the offline predictor, not the router directly:
    // the scheduler may still be draining the victim's pipeline and owns
    // the engines until then.
    core::DekgIlpPredictor predictor(&model);
    const std::vector<double> offline =
        predictor.ScoreTriples(dataset.inference_graph(), triples);
    ASSERT_EQ(response.scores.size(), offline.size());
    for (size_t i = 0; i < offline.size(); ++i) {
      EXPECT_EQ(response.scores[i], offline[i]) << "triple " << i;
    }
  }

  // Both doomed fds (victim's client side closed above; the server side
  // closes once its writer hits EPIPE/ECONNRESET and the handler joins)
  // and the survivor's pair must be gone: fd count back at baseline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int fds = -1;
  for (;;) {
    fds = CountOpenFds();
    if (fds <= baseline_fds) break;
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(fds, baseline_fds) << "leaked fds after mid-pipeline kill";

  server.RequestStop();
  server.Wait();
}

TEST(ServeDeterminismTest, EvalSubgraphCacheHandleIsTransparent) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  core::DekgIlpPredictor predictor(&model);

  EvalConfig config;
  config.num_entity_negatives = 6;
  config.max_links = 8;
  config.collect_ranks = true;

  EvalResult plain = Evaluate(&predictor, dataset, config);

  // Prefill a cache with the test links' enclosing subgraphs and hand it
  // to Evaluate read-only: metrics and ranks must not move a bit.
  SubgraphCache cache(0);
  SubgraphConfig subgraph_config;
  subgraph_config.num_hops = model.config().num_hops;
  subgraph_config.labeling = model.config().labeling;
  for (const LabeledLink& link : dataset.test_links()) {
    const Triple& t = link.triple;
    cache.Insert(t, ExtractSubgraph(dataset.inference_graph(), t.head, t.tail,
                                    t.rel, subgraph_config));
  }
  const SubgraphCache::Stats before = cache.stats();
  config.subgraph_cache = &cache;
  EvalResult with_cache = Evaluate(&predictor, dataset, config);

  ASSERT_EQ(plain.ranks.size(), with_cache.ranks.size());
  ASSERT_GT(plain.ranks.size(), 0u);
  for (size_t i = 0; i < plain.ranks.size(); ++i) {
    EXPECT_EQ(plain.ranks[i], with_cache.ranks[i]) << "rank " << i;
  }
  EXPECT_EQ(plain.overall.mrr, with_cache.overall.mrr);
  EXPECT_EQ(plain.overall.hits_at_10, with_cache.overall.hits_at_10);
  // Read-only: Evaluate used Find(), never Lookup()/Insert().
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);
  EXPECT_EQ(cache.stats().entries, before.entries);
}

}  // namespace
}  // namespace dekg::serve
