// Property/fuzz tests for dataset I/O: malformed, truncated, or
// byte-corrupted TSV input must always produce a clean diagnostic abort
// (DEKG_CHECK) or a successful load — never an uncaught exception, a
// crash, or silently wrong data. These inputs used to reach std::stoi,
// which throws on non-numeric/overflowing fields and silently accepts
// trailing garbage; the strict ParseInt32 path is pinned here.
#include <csignal>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic_kg.h"
#include "kg/dataset_io.h"

namespace dekg {
namespace {

class DatasetIoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dekg_fuzz_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    WriteValidDataset();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // A minimal hand-written dataset in the id-based directory format:
  // 3 original entities, 2 emerging, 2 relations.
  void WriteValidDataset() {
    std::filesystem::create_directories(dir_);
    WriteFile("meta.tsv", "3\t2\t2\n");
    WriteFile("train.tsv", "0\t0\t1\n1\t1\t2\n2\t0\t0\n");
    WriteFile("emerging.tsv", "3\t0\t4\n");
    WriteFile("valid.tsv", "");
    WriteFile("test.tsv", "4\t1\t3\tenclosing\n0\t0\t3\tbridging\n");
  }

  void WriteFile(const std::string& leaf, const std::string& content) {
    std::ofstream out(dir_ / leaf, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }

  DekgDataset Load() { return LoadDekgDatasetDir(dir_.string(), "fuzz"); }

  std::filesystem::path dir_;
};

using DatasetIoFuzzDeathTest = DatasetIoFuzzTest;

TEST_F(DatasetIoFuzzTest, ValidBaselineLoads) {
  DekgDataset dataset = Load();
  EXPECT_EQ(dataset.num_original_entities(), 3);
  EXPECT_EQ(dataset.num_emerging_entities(), 2);
  EXPECT_EQ(dataset.train_triples().size(), 3u);
  EXPECT_EQ(dataset.test_links().size(), 2u);
}

TEST_F(DatasetIoFuzzTest, DuplicateTriplesAreNotSilentlyDropped) {
  WriteFile("train.tsv", "0\t0\t1\n0\t0\t1\n0\t0\t1\n1\t1\t2\n");
  DekgDataset dataset = Load();
  EXPECT_EQ(dataset.train_triples().size(), 4u)
      << "duplicate train edges must survive the round trip";
}

TEST_F(DatasetIoFuzzDeathTest, MissingColumnIsRejected) {
  WriteFile("train.tsv", "0\t0\n");
  EXPECT_DEATH(Load(), "bad triple line");
}

TEST_F(DatasetIoFuzzDeathTest, ExtraColumnIsRejected) {
  WriteFile("train.tsv", "0\t0\t1\t9\n");
  EXPECT_DEATH(Load(), "bad triple line");
}

TEST_F(DatasetIoFuzzDeathTest, NonNumericIdIsRejected) {
  // std::stoi would have thrown std::invalid_argument here (uncaught ->
  // std::terminate), not produced a diagnostic.
  WriteFile("train.tsv", "zero\t0\t1\n");
  EXPECT_DEATH(Load(), "bad id field");
}

TEST_F(DatasetIoFuzzDeathTest, TrailingGarbageInIdIsRejected) {
  // std::stoi would have silently parsed 12 and dropped "abc".
  WriteFile("train.tsv", "12abc\t0\t1\n");
  EXPECT_DEATH(Load(), "bad id field");
}

TEST_F(DatasetIoFuzzDeathTest, OverflowingIdIsRejected) {
  // std::stoi would have thrown std::out_of_range.
  WriteFile("train.tsv", "99999999999999999999\t0\t1\n");
  EXPECT_DEATH(Load(), "bad id field");
}

TEST_F(DatasetIoFuzzDeathTest, NegativeIdIsRejected) {
  WriteFile("train.tsv", "-1\t0\t1\n");
  EXPECT_DEATH(Load(), "bad id field");
}

TEST_F(DatasetIoFuzzDeathTest, EmbeddedNulIsRejected) {
  WriteFile("train.tsv", std::string("0\t0\t1\0\n", 7));
  EXPECT_DEATH(Load(), "bad id field");
}

TEST_F(DatasetIoFuzzDeathTest, HugeLineProducesBoundedDiagnostic) {
  // A pathological multi-megabyte line must die with the usual message;
  // Preview() caps how much of it reaches the diagnostic.
  WriteFile("train.tsv", std::string(2 << 20, 'x') + "\n");
  EXPECT_DEATH(Load(), "bad triple line");
}

TEST_F(DatasetIoFuzzDeathTest, OutOfRangeEntityIdIsRejected) {
  // 7 parses fine but exceeds the entity count declared in meta.tsv; the
  // graph layer rejects it when the triple is inserted.
  WriteFile("train.tsv", "7\t0\t1\n");
  EXPECT_DEATH(Load(), "head 7");
}

TEST_F(DatasetIoFuzzDeathTest, UnknownLinkKindIsRejected) {
  WriteFile("test.tsv", "4\t1\t3\tweird\n");
  EXPECT_DEATH(Load(), "unknown link kind");
}

TEST_F(DatasetIoFuzzDeathTest, TruncatedLinkLineIsRejected) {
  WriteFile("test.tsv", "4\t1\t3\n");
  EXPECT_DEATH(Load(), "bad link line");
}

TEST_F(DatasetIoFuzzDeathTest, CorruptMetaIsRejected) {
  WriteFile("meta.tsv", "0\t-3\tbananas\n");
  EXPECT_DEATH(Load(), "corrupt meta");
}

TEST_F(DatasetIoFuzzDeathTest, EmptyMetaIsRejected) {
  WriteFile("meta.tsv", "");
  EXPECT_DEATH(Load(), "corrupt meta");
}

// Randomized byte-level fuzzing: corrupt random bytes of random dataset
// files and load. Each attempt runs in a forked child; the only
// acceptable outcomes are a clean load (exit 0) or a DEKG_CHECK abort
// (SIGABRT with a diagnostic). An uncaught C++ exception would also
// raise SIGABRT but via std::terminate, whose distinctive "terminate
// called" banner on stderr is rejected — as is any other signal
// (SIGSEGV, SIGBUS, ...).
TEST_F(DatasetIoFuzzDeathTest, RandomByteCorruptionNeverCrashesUncleanly) {
  const char* files[] = {"meta.tsv", "train.tsv", "emerging.tsv", "test.tsv"};
  const char junk[] = {'x', '-', '\t', '\n', '\0', ' ', '9', ':', '/', '\x80'};
  Rng rng(20260805);
  for (int iter = 0; iter < 40; ++iter) {
    WriteValidDataset();
    const char* leaf = files[rng.UniformUint64(4)];
    std::ifstream in(dir_ / leaf, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    const uint64_t edits = 1 + rng.UniformUint64(3);
    for (uint64_t e = 0; e < edits && !bytes.empty(); ++e) {
      const size_t pos = rng.UniformUint64(bytes.size());
      switch (rng.UniformUint64(3)) {
        case 0:  // overwrite
          bytes[pos] = junk[rng.UniformUint64(sizeof(junk))];
          break;
        case 1:  // insert
          bytes.insert(pos, 1, junk[rng.UniformUint64(sizeof(junk))]);
          break;
        default:  // truncate tail
          bytes.resize(pos);
          break;
      }
    }
    WriteFile(leaf, bytes);

    const std::string err_path = (dir_ / "child_stderr.txt").string();
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      const int fd = ::open(err_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0600);
      if (fd >= 0) {
        ::dup2(fd, 2);
        ::close(fd);
      }
      LoadDekgDatasetDir(dir_.string(), "fuzz");
      std::_Exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    std::ifstream err_in(err_path);
    const std::string child_err((std::istreambuf_iterator<char>(err_in)),
                                std::istreambuf_iterator<char>());
    const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    const bool clean_abort =
        WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT &&
        child_err.find("terminate called") == std::string::npos;
    EXPECT_TRUE(clean_exit || clean_abort)
        << "iteration " << iter << " corrupting " << leaf
        << ": child status " << status << ", stderr:\n" << child_err;
  }
}

}  // namespace
}  // namespace dekg
