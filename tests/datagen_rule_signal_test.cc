// Verifies the generator actually plants the signal each module family
// needs (DESIGN.md §2): composition-rule paths survive the community-
// biased G/G' split, and relation signatures identify entity types.
#include <gtest/gtest.h>

#include "datagen/synthetic_kg.h"

namespace dekg::datagen {
namespace {

SchemaConfig Schema() {
  SchemaConfig schema;
  schema.num_types = 6;
  schema.num_relations = 18;
  schema.num_entities = 250;
  schema.num_rules = 10;
  schema.rule_apply_prob = 0.7;
  return schema;
}

TEST(RuleSignalTest, PlantedRulesHaveInstancesInTheGeneratedKg) {
  Rng rng(1);
  GeneratedKg kg = GenerateKg(Schema(), &rng);
  ASSERT_FALSE(kg.rules.empty());

  // Index triples.
  TripleSet facts(kg.triples.begin(), kg.triples.end());
  // Count head triples that have a matching body path.
  int64_t supported = 0;
  int64_t total_heads = 0;
  for (const Rule& rule : kg.rules) {
    for (const Triple& t : kg.triples) {
      if (t.rel != rule.head) continue;
      ++total_heads;
      bool found = false;
      for (const Triple& body1 : kg.triples) {
        if (body1.rel != rule.body1 || body1.head != t.head) continue;
        if (facts.count(Triple{body1.tail, rule.body2, t.tail})) {
          found = true;
          break;
        }
      }
      supported += found;
    }
  }
  ASSERT_GT(total_heads, 0);
  // A meaningful share of head-relation triples is rule-derivable.
  EXPECT_GT(static_cast<double>(supported) / static_cast<double>(total_heads),
            0.2);
}

TEST(RuleSignalTest, EnclosingTestLinksOftenHaveIntactBodyPaths) {
  // The community-biased split is what keeps the GSM/RuleN signal alive:
  // for a material fraction of enclosing test links whose relation is some
  // rule's head, the 2-hop body path exists inside the observed emerging
  // structure.
  SplitConfig split;
  DekgDataset dataset = MakeDekgDataset("signal", Schema(), split, 2);
  Rng rng(3);
  GeneratedKg reference = GenerateKg(Schema(), &rng);  // same rule shapes

  const KnowledgeGraph& g = dataset.inference_graph();
  int64_t with_path = 0;
  int64_t enclosing = 0;
  for (const LabeledLink& link : dataset.test_links()) {
    if (link.kind != LinkKind::kEnclosing) continue;
    ++enclosing;
    // Any 2-hop connection head -> x -> tail counts as an intact path.
    bool found = false;
    for (int32_t eid : g.IncidentEdges(link.triple.head)) {
      const Edge& e1 = g.edge(eid);
      const EntityId mid = e1.src == link.triple.head ? e1.dst : e1.src;
      for (int32_t eid2 : g.IncidentEdges(mid)) {
        const Edge& e2 = g.edge(eid2);
        if (e2.src == link.triple.tail || e2.dst == link.triple.tail) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    with_path += found;
  }
  ASSERT_GT(enclosing, 10);
  // Not every enclosing link is rule-derived; a 2-hop connection for a
  // quarter of them is ample signal (GraIL reaches ~0.75 enclosing Hits@10
  // on these datasets). Random unseen pairs connect far less often.
  EXPECT_GT(static_cast<double>(with_path) / static_cast<double>(enclosing),
            0.2)
      << "the split severed almost all local structure";
}

TEST(RuleSignalTest, RelationSignaturesIdentifyTypes) {
  // CLRM's premise: an entity's incident-relation multiset reveals its
  // type. Check that a simple nearest-centroid classifier over relation
  // histograms recovers entity types far above chance.
  Rng rng(4);
  GeneratedKg kg = GenerateKg(Schema(), &rng);
  KnowledgeGraph g = BuildGraph(kg.num_entities, kg.num_relations, kg.triples);

  // Centroids per type.
  const int32_t nt = 6;
  std::vector<std::vector<double>> centroid(
      static_cast<size_t>(nt),
      std::vector<double>(static_cast<size_t>(kg.num_relations), 0.0));
  std::vector<int32_t> count(static_cast<size_t>(nt), 0);
  auto histogram = [&](EntityId e) {
    std::vector<int32_t> h = g.RelationComponentTable(e);
    std::vector<double> out(h.size());
    double total = 0;
    for (int32_t c : h) total += c;
    for (size_t k = 0; k < h.size(); ++k) {
      out[k] = total > 0 ? h[k] / total : 0.0;
    }
    return out;
  };
  for (EntityId e = 0; e < kg.num_entities; ++e) {
    if (g.Degree(e) == 0) continue;
    const int32_t t = kg.entity_types[static_cast<size_t>(e)];
    std::vector<double> h = histogram(e);
    for (size_t k = 0; k < h.size(); ++k) centroid[static_cast<size_t>(t)][k] += h[k];
    ++count[static_cast<size_t>(t)];
  }
  for (int32_t t = 0; t < nt; ++t) {
    for (double& v : centroid[static_cast<size_t>(t)]) {
      v /= std::max(count[static_cast<size_t>(t)], 1);
    }
  }
  int64_t correct = 0, total = 0;
  for (EntityId e = 0; e < kg.num_entities; ++e) {
    if (g.Degree(e) < 2) continue;
    std::vector<double> h = histogram(e);
    int32_t best = 0;
    double best_dist = 1e18;
    for (int32_t t = 0; t < nt; ++t) {
      double d = 0;
      for (size_t k = 0; k < h.size(); ++k) {
        const double diff = h[k] - centroid[static_cast<size_t>(t)][k];
        d += diff * diff;
      }
      if (d < best_dist) {
        best_dist = d;
        best = t;
      }
    }
    correct += best == kg.entity_types[static_cast<size_t>(e)];
    ++total;
  }
  ASSERT_GT(total, 100);
  // Chance is 1/6 ~ 0.17; the signature signal should be far stronger.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.6);
}

}  // namespace
}  // namespace dekg::datagen
