// Semantic tests for the contrastive machinery (Sec. IV-B2): the sampling
// operations must move embeddings the way the paper's intuition says —
// relation *variation* (o1) perturbs the embedding mildly (the relation
// set, hence "social image", is stable), while relation *addition/
// deletion* (o2/o3) moves it further, and optimizing the loss makes that
// contrast sharper.
#include <cmath>

#include <gtest/gtest.h>

#include "core/clrm.h"
#include "nn/optimizer.h"

namespace dekg::core {
namespace {

ClrmConfig Config() {
  ClrmConfig config;
  config.num_relations = 8;
  config.dim = 16;
  config.num_contrastive_samples = 6;
  return config;
}

double Distance(const Tensor& a, const Tensor& b) {
  double sq = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.Data()[i]) - b.Data()[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

TEST(ContrastiveSemanticsTest, TrainingSeparatesPositivesFromNegatives) {
  Rng rng(1);
  Clrm clrm(Config(), &rng);
  nn::Adam optimizer(&clrm, {.lr = 0.02});
  RelationTable table{4, 2, 0, 3, 0, 0, 1, 0};

  auto mean_distances = [&]() {
    Rng sample_rng(99);
    Tensor anchor = clrm.EmbedEntity(table).value();
    double pos_dist = 0.0, neg_dist = 0.0;
    const int kSamples = 40;
    for (int i = 0; i < kSamples; ++i) {
      Tensor pos =
          clrm.EmbedEntity(clrm.RelationVariation(table, &sample_rng)).value();
      Tensor neg =
          clrm.EmbedEntity(clrm.RelationAdditionDeletion(table, &sample_rng))
              .value();
      pos_dist += Distance(anchor, pos) / kSamples;
      neg_dist += Distance(anchor, neg) / kSamples;
    }
    return std::pair<double, double>(pos_dist, neg_dist);
  };

  for (int step = 0; step < 120; ++step) {
    clrm.ZeroGrad();
    Rng sample_rng(static_cast<uint64_t>(step) + 1000);
    ag::Var loss = clrm.ContrastiveLoss(table, &sample_rng);
    ASSERT_TRUE(loss.defined());
    loss.Backward();
    optimizer.Step();
  }
  auto [pos_after, neg_after] = mean_distances();
  // After optimization, negatives sit beyond positives by a clear margin.
  EXPECT_GT(neg_after, pos_after)
      << "contrastive training failed to order positives before negatives";
}

TEST(ContrastiveSemanticsTest, VariationPreservesEmbeddingDirectionForPureEntity) {
  // An entity with a single relation keeps the *same* embedding under o1:
  // the fusion is scale-invariant in the multiplicity of a lone relation.
  Rng rng(2);
  Clrm clrm(Config(), &rng);
  RelationTable table{0, 0, 5, 0, 0, 0, 0, 0};
  Tensor anchor = clrm.EmbedEntity(table).value();
  for (int trial = 0; trial < 20; ++trial) {
    RelationTable varied = clrm.RelationVariation(table, &rng);
    Tensor moved = clrm.EmbedEntity(varied).value();
    EXPECT_TRUE(AllClose(anchor, moved, 1e-5f))
        << "o1 changed a single-relation entity's semantics";
  }
}

TEST(ContrastiveSemanticsTest, DeletionOfLoneRelationNeverProduced) {
  // o3 must not delete the only relation (an all-zero table is degenerate,
  // not a semantic change); o2 must still fire so a negative exists.
  Rng rng(3);
  Clrm clrm(Config(), &rng);
  RelationTable table{0, 0, 0, 0, 7, 0, 0, 0};
  for (int trial = 0; trial < 50; ++trial) {
    RelationTable negative = clrm.RelationAdditionDeletion(table, &rng);
    int32_t nonzero = 0;
    for (int32_t c : negative) nonzero += c > 0;
    EXPECT_GE(nonzero, 1) << "negative example lost all semantics";
    EXPECT_NE(negative, table) << "negative example identical to anchor";
  }
}

TEST(ContrastiveSemanticsTest, LossIsZeroWhenMarginAlreadySatisfied) {
  // With a huge negative distance and tiny positive distance, the hinge is
  // inactive. Construct by making one feature row enormous so adding that
  // relation (o2) moves the embedding very far.
  Rng rng(4);
  ClrmConfig config = Config();
  config.contrastive_margin = 0.0;  // any separation satisfies the margin
  Clrm clrm(config, &rng);
  RelationTable table{3, 3, 3, 3, 3, 3, 3, 3};  // all relations attached
  // With every relation attached, o2 cannot fire; o3 deletes one -> the
  // negative moves, positives via o1 move less. Just verify the loss is
  // finite and non-negative at margin 0.
  ag::Var loss = clrm.ContrastiveLoss(table, &rng);
  ASSERT_TRUE(loss.defined());
  EXPECT_GE(loss.value().Data()[0], 0.0f);
  EXPECT_TRUE(std::isfinite(loss.value().Data()[0]));
}

}  // namespace
}  // namespace dekg::core
