// SubgraphCache semantics: hit/miss accounting, deterministic FIFO
// eviction under a capacity bound, byte accounting, and transparency —
// a served subgraph is exactly what a fresh extraction would produce.
#include <gtest/gtest.h>

#include "graph/subgraph.h"

namespace dekg {
namespace {

Subgraph MakeSubgraph(int32_t num_nodes, int32_t num_edges) {
  Subgraph s;
  for (int32_t i = 0; i < num_nodes; ++i) {
    s.nodes.push_back(SubgraphNode{i, 0, 1});
  }
  for (int32_t i = 0; i < num_edges; ++i) {
    s.edges.push_back(SubgraphEdge{0, 0, 1});
  }
  return s;
}

bool SameSubgraph(const Subgraph& a, const Subgraph& b) {
  if (a.nodes.size() != b.nodes.size() || a.edges.size() != b.edges.size()) {
    return false;
  }
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    if (a.nodes[i].entity != b.nodes[i].entity ||
        a.nodes[i].dist_head != b.nodes[i].dist_head ||
        a.nodes[i].dist_tail != b.nodes[i].dist_tail) {
      return false;
    }
  }
  for (size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].src != b.edges[i].src || a.edges[i].rel != b.edges[i].rel ||
        a.edges[i].dst != b.edges[i].dst) {
      return false;
    }
  }
  return true;
}

TEST(SubgraphCacheTest, LookupCountsHitsAndMisses) {
  SubgraphCache cache(/*capacity=*/0);
  const Triple t{1, 0, 2};
  EXPECT_EQ(cache.Lookup(t), nullptr);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);

  cache.Insert(t, MakeSubgraph(3, 2));
  const Subgraph* hit = cache.Lookup(t);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->nodes.size(), 3u);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().entries, 1);

  // Find() does not touch the counters.
  EXPECT_NE(cache.Find(t), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);

  cache.ResetCounters();
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().entries, 1) << "residency survives ResetCounters";
}

TEST(SubgraphCacheTest, InsertIsIdempotentWhileResident) {
  SubgraphCache cache(/*capacity=*/0);
  const Triple t{1, 0, 2};
  const Subgraph* first = cache.Insert(t, MakeSubgraph(3, 2));
  const Subgraph* second = cache.Insert(t, MakeSubgraph(9, 9));
  EXPECT_EQ(first, second) << "re-insert must keep the resident entry";
  EXPECT_EQ(second->nodes.size(), 3u);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(SubgraphCacheTest, FifoEvictionIsOldestFirst) {
  SubgraphCache cache(/*capacity=*/2);
  const Triple a{0, 0, 1}, b{1, 0, 2}, c{2, 0, 3};
  cache.Insert(a, MakeSubgraph(2, 1));
  cache.Insert(b, MakeSubgraph(2, 1));
  EXPECT_EQ(cache.stats().entries, 2);
  cache.Insert(c, MakeSubgraph(2, 1));
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Find(a), nullptr) << "oldest insertion evicted first";
  EXPECT_NE(cache.Find(b), nullptr);
  EXPECT_NE(cache.Find(c), nullptr);
  // Next eviction retires b, not c.
  cache.Insert(Triple{3, 0, 4}, MakeSubgraph(2, 1));
  EXPECT_EQ(cache.Find(b), nullptr);
  EXPECT_NE(cache.Find(c), nullptr);
}

TEST(SubgraphCacheTest, ByteAccountingTracksResidency) {
  SubgraphCache cache(/*capacity=*/1);
  const int64_t expect_a =
      static_cast<int64_t>(4 * sizeof(SubgraphNode) + 3 * sizeof(SubgraphEdge));
  cache.Insert(Triple{0, 0, 1}, MakeSubgraph(4, 3));
  EXPECT_EQ(cache.stats().bytes, expect_a);
  // Eviction releases a's bytes, insert adds b's.
  const int64_t expect_b =
      static_cast<int64_t>(2 * sizeof(SubgraphNode) + 1 * sizeof(SubgraphEdge));
  cache.Insert(Triple{1, 0, 2}, MakeSubgraph(2, 1));
  EXPECT_EQ(cache.stats().bytes, expect_b);
  cache.Clear();
  EXPECT_EQ(cache.stats().bytes, 0);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(SubgraphCacheTest, ReinsertedKeyAgesFromReinsertion) {
  // Regression for the stale-FIFO bug: a key erased and later re-inserted
  // used to retire early through its old queue slot. With sequence-paired
  // slots, eviction order is a pure function of the live insertion
  // history: after a is erased and re-inserted, b is the oldest resident.
  SubgraphCache cache(/*capacity=*/2);
  const Triple a{0, 0, 1}, b{1, 0, 2}, c{2, 0, 3};
  cache.Insert(a, MakeSubgraph(2, 1));
  cache.Insert(b, MakeSubgraph(2, 1));
  EXPECT_TRUE(cache.Erase(a));
  cache.Insert(a, MakeSubgraph(3, 2));  // re-insert: a is now the newest
  cache.Insert(c, MakeSubgraph(2, 1));
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Find(b), nullptr) << "b is the oldest live insertion";
  ASSERT_NE(cache.Find(a), nullptr) << "re-inserted a must survive";
  EXPECT_EQ(cache.Find(a)->nodes.size(), 3u);
  EXPECT_NE(cache.Find(c), nullptr);
}

TEST(SubgraphCacheTest, CapacityInvariantHoldsUnderChurn) {
  // Deterministic erase/re-insert churn: the resident count must never
  // exceed the capacity, bytes must always equal the sum over residents,
  // and eviction must always find a live victim (no CHECK failure from an
  // all-stale queue).
  const int64_t capacity = 4;
  SubgraphCache cache(capacity);
  for (int32_t round = 0; round < 64; ++round) {
    const Triple t{round % 7, 0, (round % 7) + 1};
    if (round % 3 == 1) cache.Erase(t);
    cache.Insert(t, MakeSubgraph(1 + round % 5, round % 4));
    ASSERT_LE(cache.stats().entries, capacity) << "round " << round;
    int64_t bytes = 0;
    for (int32_t k = 0; k < 8; ++k) {
      const Subgraph* s = cache.Find(Triple{k, 0, k + 1});
      if (s == nullptr) continue;
      bytes += static_cast<int64_t>(s->nodes.size() * sizeof(SubgraphNode) +
                                    s->edges.size() * sizeof(SubgraphEdge));
    }
    ASSERT_EQ(cache.stats().bytes, bytes) << "round " << round;
  }
}

TEST(SubgraphCacheTest, ReplaceSwapsPayloadInPlace) {
  SubgraphCache cache(/*capacity=*/2);
  const Triple a{0, 0, 1}, b{1, 0, 2}, c{2, 0, 3};
  EXPECT_EQ(cache.Replace(a, MakeSubgraph(1, 1)), nullptr)
      << "replacing an absent key is a no-op";
  EXPECT_EQ(cache.stats().entries, 0);

  const Subgraph* resident = cache.Insert(a, MakeSubgraph(4, 3));
  cache.Insert(b, MakeSubgraph(2, 1));
  const Subgraph* replaced = cache.Replace(a, MakeSubgraph(2, 2));
  EXPECT_EQ(replaced, resident) << "entry address is stable across Replace";
  EXPECT_EQ(replaced->nodes.size(), 2u);
  EXPECT_EQ(cache.stats().entries, 2);
  const int64_t expect =
      static_cast<int64_t>((2 + 2) * sizeof(SubgraphNode) +
                           (2 + 1) * sizeof(SubgraphEdge));
  EXPECT_EQ(cache.stats().bytes, expect) << "bytes re-accounted on Replace";

  // Replace does not refresh FIFO age: a is still the oldest insertion.
  cache.Insert(c, MakeSubgraph(2, 1));
  EXPECT_EQ(cache.Find(a), nullptr);
  EXPECT_NE(cache.Find(b), nullptr);
  EXPECT_NE(cache.Find(c), nullptr);
}

TEST(SubgraphCacheTest, ServedSubgraphMatchesFreshExtraction) {
  // A small diamond graph: extraction is deterministic, so the cached
  // subgraph must equal a fresh extraction field-for-field.
  KnowledgeGraph g(/*num_entities=*/5, /*num_relations=*/2);
  g.AddTriple(Triple{0, 0, 1});
  g.AddTriple(Triple{1, 0, 2});
  g.AddTriple(Triple{0, 1, 3});
  g.AddTriple(Triple{3, 1, 2});
  g.AddTriple(Triple{2, 0, 4});
  g.Build();

  SubgraphConfig config;
  const Triple target{0, 0, 2};
  Subgraph fresh =
      ExtractSubgraph(g, target.head, target.tail, target.rel, config);

  SubgraphCache cache(/*capacity=*/0);
  cache.Insert(target,
               ExtractSubgraph(g, target.head, target.tail, target.rel,
                               config));
  const Subgraph* served = cache.Lookup(target);
  ASSERT_NE(served, nullptr);
  EXPECT_TRUE(SameSubgraph(*served, fresh));
  // And again: repeated lookups keep serving the identical object.
  EXPECT_EQ(cache.Lookup(target), served);
}

}  // namespace
}  // namespace dekg
