// Numerical gradient verification for every differentiable op: perturb each
// input element by +-eps, compare the central-difference slope of a scalar
// loss against the analytic gradient from Backward().
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace dekg::ag {
namespace {

// Builds a scalar loss from leaf inputs, then checks d(loss)/d(input)
// numerically for every input element.
void CheckGradients(const std::vector<Tensor>& inputs,
                    const std::function<Var(const std::vector<Var>&)>& fn,
                    float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  std::vector<Var> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(Var::Leaf(t.Clone(), true));
  Var loss = fn(leaves);
  ASSERT_EQ(loss.value().numel(), 1);
  loss.Backward();

  for (size_t p = 0; p < inputs.size(); ++p) {
    ASSERT_TRUE(leaves[p].has_grad()) << "input " << p << " got no gradient";
    const Tensor& analytic = leaves[p].grad();
    for (int64_t i = 0; i < inputs[p].numel(); ++i) {
      auto eval = [&](float delta) {
        std::vector<Var> probe;
        for (size_t q = 0; q < inputs.size(); ++q) {
          Tensor t = inputs[q].Clone();
          if (q == p) t.Data()[i] += delta;
          probe.push_back(Var::Leaf(std::move(t), false));
        }
        return fn(probe).value().Data()[0];
      };
      const float numeric = (eval(eps) - eval(-eps)) / (2.0f * eps);
      const float got = analytic.Data()[i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(got)});
      EXPECT_NEAR(got, numeric, tol * scale)
          << "input " << p << " element " << i;
    }
  }
}

Tensor RandomTensor(Shape shape, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), lo, hi, &rng);
}

TEST(GradCheck, AddMulSubChain) {
  CheckGradients({RandomTensor({2, 3}, 1), RandomTensor({2, 3}, 2)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Mul(Add(v[0], v[1]), Sub(v[0], v[1])));
                 });
}

TEST(GradCheck, DivOp) {
  CheckGradients({RandomTensor({4}, 3), RandomTensor({4}, 4, 0.5f, 2.0f)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Div(v[0], v[1]));
                 });
}

TEST(GradCheck, ScalarBroadcast) {
  CheckGradients({RandomTensor({3, 2}, 5), RandomTensor({1}, 6)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Mul(v[0], v[1]));
                 });
}

TEST(GradCheck, RowBroadcastBias) {
  CheckGradients({RandomTensor({3, 4}, 7), RandomTensor({4}, 8)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(Add(v[0], v[1])));
                 });
}

TEST(GradCheck, MatMulBothSides) {
  CheckGradients({RandomTensor({3, 4}, 9), RandomTensor({4, 2}, 10)},
                 [](const std::vector<Var>& v) {
                   return SumAll(MatMul(v[0], v[1]));
                 });
}

TEST(GradCheck, TransposeOp) {
  CheckGradients({RandomTensor({2, 3}, 11)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(Transpose(v[0])));
                 });
}

TEST(GradCheck, SigmoidTanhChain) {
  CheckGradients({RandomTensor({5}, 12)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Tanh(Sigmoid(v[0])));
                 });
}

TEST(GradCheck, ExpLogSqrt) {
  CheckGradients({RandomTensor({4}, 13, 0.5f, 2.0f)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Log(Exp(Sqrt(v[0]))));
                 });
}

TEST(GradCheck, ReluAwayFromKink) {
  CheckGradients({RandomTensor({6}, 14, 0.2f, 1.0f),
                  RandomTensor({6}, 15, -1.0f, -0.2f)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Add(Relu(v[0]), Relu(v[1])));
                 });
}

TEST(GradCheck, LeakyReluOp) {
  CheckGradients({RandomTensor({6}, 16, 0.2f, 1.0f)},
                 [](const std::vector<Var>& v) {
                   return SumAll(LeakyRelu(Neg(v[0]), 0.1f));
                 });
}

TEST(GradCheck, AbsAwayFromZero) {
  CheckGradients({RandomTensor({4}, 17, 0.3f, 1.0f)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Abs(Neg(v[0])));
                 });
}

TEST(GradCheck, CosSin) {
  CheckGradients({RandomTensor({5}, 18)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Add(Cos(v[0]), Sin(v[0])));
                 });
}

TEST(GradCheck, SumRowsMeanRows) {
  CheckGradients({RandomTensor({3, 4}, 19)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(MeanRows(v[0])));
                 });
}

TEST(GradCheck, MeanOverRowsPooling) {
  CheckGradients({RandomTensor({4, 3}, 20)},
                 [](const std::vector<Var>& v) {
                   Var pooled = MeanOverRows(v[0]);  // [3]
                   return SumAll(Square(pooled));
                 });
}

TEST(GradCheck, SoftmaxRowsOp) {
  CheckGradients({RandomTensor({2, 4}, 21)},
                 [](const std::vector<Var>& v) {
                   Var s = SoftmaxRows(v[0]);
                   // Weighted sum makes the gradient non-trivial.
                   Tensor w({2, 4}, {1, 2, 3, 4, 4, 3, 2, 1});
                   return SumAll(Mul(s, Var::Constant(w)));
                 });
}

TEST(GradCheck, GatherRowsWithDuplicates) {
  CheckGradients({RandomTensor({4, 3}, 22)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(GatherRows(v[0], {0, 2, 2, 3})));
                 });
}

TEST(GradCheck, ScatterSumRowsOp) {
  CheckGradients({RandomTensor({4, 2}, 23)},
                 [](const std::vector<Var>& v) {
                   Var scattered = ScatterSumRows(v[0], {1, 0, 1, 2}, 3);
                   return SumAll(Square(scattered));
                 });
}

TEST(GradCheck, ScaleRowsBothInputs) {
  CheckGradients({RandomTensor({3, 4}, 24), RandomTensor({3}, 25)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(ScaleRows(v[0], v[1])));
                 });
}

TEST(GradCheck, SegmentSumRowsOp) {
  CheckGradients({RandomTensor({5, 3}, 37)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(SegmentSumRows(v[0], {0, 2, 5})));
                 });
}

TEST(GradCheck, SegmentMeanRowsOp) {
  CheckGradients({RandomTensor({6, 2}, 38)},
                 [](const std::vector<Var>& v) {
                   return SumAll(
                       Square(SegmentMeanRows(v[0], {0, 1, 4, 6})));
                 });
}

TEST(GradCheck, ConcatAxis0) {
  CheckGradients({RandomTensor({2, 3}, 26), RandomTensor({1, 3}, 27)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(Concat({v[0], v[1]}, 0)));
                 });
}

TEST(GradCheck, ConcatAxis1) {
  CheckGradients({RandomTensor({2, 2}, 28), RandomTensor({2, 3}, 29)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(Concat({v[0], v[1]}, 1)));
                 });
}

TEST(GradCheck, SliceRowsOp) {
  CheckGradients({RandomTensor({4, 3}, 30)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(SliceRows(v[0], 1, 3)));
                 });
}

TEST(GradCheck, ReshapeOp) {
  CheckGradients({RandomTensor({2, 6}, 31)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(Reshape(v[0], {3, 4})));
                 });
}

TEST(GradCheck, Conv2dInputAndKernel) {
  CheckGradients({RandomTensor({1, 2, 4, 4}, 32), RandomTensor({2, 2, 2, 2}, 33)},
                 [](const std::vector<Var>& v) {
                   return SumAll(Square(Conv2d(v[0], v[1])));
                 });
}

TEST(GradCheck, RowSquaredDistanceOp) {
  CheckGradients({RandomTensor({3, 4}, 34), RandomTensor({3, 4}, 35)},
                 [](const std::vector<Var>& v) {
                   return SumAll(RowSquaredDistance(v[0], v[1]));
                 });
}

TEST(GradCheck, BceWithLogitsOp) {
  Tensor targets({4}, {1.0f, 0.0f, 1.0f, 0.0f});
  CheckGradients({RandomTensor({4}, 36)},
                 [targets](const std::vector<Var>& v) {
                   return BceWithLogits(v[0], targets);
                 });
}

TEST(GradCheck, SharedSubexpressionAccumulates) {
  // x used twice: d/dx (x*x + x) = 2x + 1.
  Tensor x({1}, {3.0f});
  Var leaf = Var::Leaf(x, true);
  Var loss = Add(Mul(leaf, leaf), leaf);
  loss.Backward();
  EXPECT_NEAR(leaf.grad().Data()[0], 7.0f, 1e-5f);
}

TEST(GradCheck, NoGradLeafGetsNoGradient) {
  Var a = Var::Leaf(Tensor::Scalar(2.0f), true);
  Var b = Var::Constant(Tensor::Scalar(3.0f));
  Var loss = Mul(a, b);
  loss.Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_FALSE(b.has_grad());
  EXPECT_NEAR(a.grad().Data()[0], 3.0f, 1e-6f);
}

TEST(GradCheck, ZeroGradResets) {
  Var a = Var::Leaf(Tensor::Scalar(2.0f), true);
  Var loss = Square(a);
  loss.Backward();
  EXPECT_TRUE(a.has_grad());
  a.ZeroGrad();
  EXPECT_FALSE(a.has_grad());
}

TEST(GradCheck, DropoutEvalIsIdentity) {
  Rng rng(1);
  Var a = Var::Leaf(RandomTensor({8}, 40), true);
  Var out = Dropout(a, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(out.value(), a.value()));
}

TEST(GradCheck, DropoutTrainScalesSurvivors) {
  Rng rng(7);
  Tensor ones = Tensor::Ones({1000});
  Var a = Var::Leaf(ones, true);
  Var out = Dropout(a, 0.5f, /*training=*/true, &rng);
  // Survivors are scaled by 2; overall mean stays near 1.
  float mean = MeanAll(out.value());
  EXPECT_NEAR(mean, 1.0f, 0.15f);
  for (int64_t i = 0; i < out.value().numel(); ++i) {
    float v = out.value().Data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
  }
}

}  // namespace
}  // namespace dekg::ag
