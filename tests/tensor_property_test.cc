// Property-based sweeps over tensor-op invariants, parameterized across
// shapes and seeds (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace dekg {
namespace {

using ShapeSeed = std::tuple<int64_t, int64_t, uint64_t>;

class MatrixProperty : public ::testing::TestWithParam<ShapeSeed> {
 protected:
  int64_t rows() const { return std::get<0>(GetParam()); }
  int64_t cols() const { return std::get<1>(GetParam()); }
  uint64_t seed() const { return std::get<2>(GetParam()); }
  Tensor Random(uint64_t salt = 0) const {
    Rng rng(seed() ^ salt);
    return Tensor::Uniform({rows(), cols()}, -2.0f, 2.0f, &rng);
  }
};

TEST_P(MatrixProperty, AddIsCommutative) {
  Tensor a = Random(1), b = Random(2);
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a), 0.0f));
}

TEST_P(MatrixProperty, AddSubRoundTrips) {
  Tensor a = Random(3), b = Random(4);
  EXPECT_TRUE(AllClose(Sub(Add(a, b), b), a, 1e-5f));
}

TEST_P(MatrixProperty, MulDistributesOverAdd) {
  Tensor a = Random(5), b = Random(6), c = Random(7);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-4f));
}

TEST_P(MatrixProperty, TransposeOfMatMul) {
  Rng rng(seed());
  Tensor a = Tensor::Uniform({rows(), cols()}, -1, 1, &rng);
  Tensor b = Tensor::Uniform({cols(), rows() + 1}, -1, 1, &rng);
  Tensor lhs = Transpose(MatMul(a, b));
  Tensor rhs = MatMul(Transpose(b), Transpose(a));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-4f));
}

TEST_P(MatrixProperty, MatMulIdentity) {
  Tensor a = Random(8);
  Tensor eye = Tensor::Zeros({cols(), cols()});
  for (int64_t i = 0; i < cols(); ++i) eye.At(i, i) = 1.0f;
  EXPECT_TRUE(AllClose(MatMul(a, eye), a, 1e-5f));
}

TEST_P(MatrixProperty, SumAllEqualsSumOfRowSums) {
  Tensor a = Random(9);
  EXPECT_NEAR(SumAll(a), SumAll(SumRows(a)), 1e-3f);
}

TEST_P(MatrixProperty, SoftmaxRowsAreDistributions) {
  Tensor s = SoftmaxRows(Random(10));
  Tensor row_sums = SumRows(s);
  for (int64_t i = 0; i < rows(); ++i) {
    EXPECT_NEAR(row_sums.At(i), 1.0f, 1e-5f);
  }
  EXPECT_GE(MeanAll(s), 0.0f);
}

TEST_P(MatrixProperty, SoftmaxInvariantToRowShift) {
  Tensor a = Random(11);
  Tensor shifted = Add(a, Tensor::Scalar(3.5f));
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(shifted), 1e-5f));
}

TEST_P(MatrixProperty, GatherScatterAdjoint) {
  // <ScatterAdd(u, idx), v> == <u, Gather(v, idx)> — the identity the
  // autograd engine relies on for message passing.
  Rng rng(seed() ^ 12);
  std::vector<int64_t> indices;
  const int64_t k = rows() + 2;
  for (int64_t i = 0; i < k; ++i) {
    indices.push_back(static_cast<int64_t>(rng.UniformUint64(
        static_cast<uint64_t>(rows()))));
  }
  Tensor u = Tensor::Uniform({k, cols()}, -1, 1, &rng);
  Tensor v = Tensor::Uniform({rows(), cols()}, -1, 1, &rng);
  Tensor scattered = Tensor::Zeros({rows(), cols()});
  ScatterAddRows(&scattered, indices, u);
  const float lhs = Dot(scattered, v);
  const float rhs = Dot(u, GatherRows(v, indices));
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

TEST_P(MatrixProperty, ConcatSliceRoundTrip) {
  Tensor a = Random(13), b = Random(14);
  Tensor cat = Concat({a, b}, 0);
  EXPECT_TRUE(AllClose(SliceRows(cat, 0, rows()), a, 0.0f));
  EXPECT_TRUE(AllClose(SliceRows(cat, rows(), 2 * rows()), b, 0.0f));
}

TEST_P(MatrixProperty, ReluIdempotent) {
  Tensor a = Random(15);
  Tensor r = Relu(a);
  EXPECT_TRUE(AllClose(Relu(r), r, 0.0f));
  EXPECT_GE(0.0f, -MeanAll(Relu(a)));  // non-negative output
}

TEST_P(MatrixProperty, SigmoidRange) {
  Tensor s = Sigmoid(Random(16));
  for (int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_GT(s.Data()[i], 0.0f);
    EXPECT_LT(s.Data()[i], 1.0f);
  }
}

TEST_P(MatrixProperty, ExpLogRoundTrip) {
  Rng rng(seed() ^ 17);
  Tensor a = Tensor::Uniform({rows(), cols()}, 0.1f, 3.0f, &rng);
  EXPECT_TRUE(AllClose(Exp(Log(a)), a, 1e-4f));
}

TEST_P(MatrixProperty, Conv2dIsLinearInInput) {
  Rng rng(seed() ^ 18);
  const int64_t h = 4, w = 5;
  Tensor x = Tensor::Uniform({1, 1, h, w}, -1, 1, &rng);
  Tensor y = Tensor::Uniform({1, 1, h, w}, -1, 1, &rng);
  Tensor kernel = Tensor::Uniform({2, 1, 2, 2}, -1, 1, &rng);
  Tensor lhs = Conv2d(Add(x, y), kernel);
  Tensor rhs = Add(Conv2d(x, kernel), Conv2d(y, kernel));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixProperty,
    ::testing::Values(ShapeSeed{1, 1, 1}, ShapeSeed{2, 3, 2},
                      ShapeSeed{5, 4, 3}, ShapeSeed{8, 8, 4},
                      ShapeSeed{16, 7, 5}, ShapeSeed{3, 32, 6},
                      ShapeSeed{31, 2, 7}));

}  // namespace
}  // namespace dekg
