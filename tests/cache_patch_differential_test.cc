// Differential churn-test harness — the acceptance gate of the in-place
// cache-patch path (DESIGN.md §13). Two InferenceEngines step IDENTICAL
// randomized ingest/score schedules side by side: one with patch_cache on
// (patch / repair / fallback maintenance) and one with the
// invalidate-on-ingest reference semantics. At EVERY step their scores
// must be bit-identical, their GoldenSummary-style %.17g step records
// must be equal strings, and both must match the offline predictor run
// against a statically built oracle graph over the same triple multiset
// (valid by the dynamic-append ordering invariant on KnowledgeGraph).
//
// Schedules are seeded and cover the hostile shapes: duplicate edge
// re-ingestion, isolated emerging entities entering (and later joining)
// the graph, ingest batches whose edges straddle the t-hop boundary of
// warm cached subgraphs, and interleavings that score between every
// ingest so the cache is always warm when maintenance runs. The two
// caches intentionally diverge in CONTENT over time (patch mode keeps
// entries warm that invalidate mode drops) — which is exactly why the
// score gate is meaningful: served bits must not depend on which policy
// filled the cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dekg_ilp.h"
#include "datagen/synthetic_kg.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace dekg::serve {
namespace {

DekgDataset ChurnDataset(uint64_t seed) {
  datagen::SchemaConfig schema;
  schema.num_types = 5;
  schema.num_relations = 12;
  schema.num_entities = 140;
  datagen::SplitConfig split;
  split.max_test_links = 40;
  return datagen::MakeDekgDataset("churn", schema, split, seed);
}

core::DekgIlpConfig SmallModelConfig(int32_t num_relations) {
  core::DekgIlpConfig config;
  config.num_relations = num_relations;
  config.dim = 8;
  return config;
}

std::vector<ScoreItem> ItemsFor(const std::vector<Triple>& triples,
                                uint64_t request_seed) {
  std::vector<ScoreItem> items;
  for (size_t i = 0; i < triples.size(); ++i) {
    items.push_back({triples[i], MixSeed(request_seed, i)});
  }
  return items;
}

// GoldenSummary-style record of one step's scores: "step.i<TAB>value"
// lines at full %.17g precision, so equal strings mean bit-equal doubles.
std::string StepSummary(size_t step, const std::vector<double>& scores) {
  std::string out;
  char line[64];
  for (size_t i = 0; i < scores.size(); ++i) {
    std::snprintf(line, sizeof(line), "%zu.%zu\t%.17g\n", step, i, scores[i]);
    out += line;
  }
  return out;
}

struct ScheduleOutcome {
  uint64_t patched = 0;
  uint64_t repaired = 0;
  uint64_t fallback = 0;
  uint64_t score_steps = 0;
  uint64_t ingest_steps = 0;
};

// Steps one seeded churn schedule through both engines, gating bitwise
// identity at every score step (differential + static-graph oracle).
void RunChurnSchedule(uint64_t schedule_seed, int32_t num_steps,
                      double ingest_probability, ScheduleOutcome* outcome) {
  DekgDataset dataset = ChurnDataset(MixSeed(97, schedule_seed));
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/3);
  core::DekgIlpPredictor predictor(&model);

  EngineConfig patch_config;
  patch_config.cache_capacity = 64;  // small: evictions interleave too
  EngineConfig invalidate_config = patch_config;
  invalidate_config.patch_cache = false;
  InferenceEngine patch_engine(&model, dataset.original_graph(), patch_config);
  InferenceEngine invalidate_engine(&model, dataset.original_graph(),
                                    invalidate_config);

  // Score pool: the test links plus, as the schedule ingests isolated
  // emerging entities, triples that involve them.
  std::vector<Triple> pool;
  for (const LabeledLink& link : dataset.test_links()) {
    pool.push_back(link.triple);
  }
  const std::vector<Triple>& emerging = dataset.emerging_triples();
  const int32_t base_entities = dataset.inference_graph().num_entities();
  const int32_t num_relations = dataset.num_relations();

  std::vector<Triple> ingested;  // full prefix, for the static oracle
  size_t emerging_cursor = 0;
  int32_t fresh_entities = 0;
  Rng rng(MixSeed(131, schedule_seed));

  for (int32_t step = 0; step < num_steps; ++step) {
    const bool do_ingest =
        rng.Bernoulli(ingest_probability) || step == num_steps - 1;
    if (do_ingest) {
      ++outcome->ingest_steps;
      std::vector<Triple> batch;
      const int64_t kind = rng.UniformInt(0, 9);
      if (kind == 0 && !ingested.empty()) {
        // Duplicate re-ingestion of already-applied edges.
        const size_t count = static_cast<size_t>(rng.UniformInt(
            1, std::min<int64_t>(4, static_cast<int64_t>(ingested.size()))));
        for (size_t i = 0; i < count; ++i) {
          batch.push_back(ingested[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(ingested.size()) - 1))]);
        }
      } else if (kind == 1) {
        // An isolated emerging pair: both endpoints brand new. The link
        // becomes scoreable immediately (all-zero CLRM row, empty
        // neighborhood) and later steps may bridge it in (kind == 2).
        const EntityId a = base_entities + fresh_entities++;
        const EntityId b = base_entities + fresh_entities++;
        const Triple isolated{
            a, static_cast<RelationId>(rng.UniformInt(0, num_relations - 1)),
            b};
        batch.push_back(isolated);
        pool.push_back(isolated);
      } else if (kind == 2 && fresh_entities > 0) {
        // Bridge a previously isolated entity into the known graph — a
        // membership-changing edge for any warm subgraph near the known
        // endpoint.
        const EntityId fresh = base_entities + static_cast<EntityId>(
            rng.UniformInt(0, fresh_entities - 1));
        const EntityId known =
            static_cast<EntityId>(rng.UniformInt(0, base_entities - 1));
        const Triple bridge{fresh, static_cast<RelationId>(rng.UniformInt(
                                       0, num_relations - 1)),
                            known};
        batch.push_back(bridge);
        pool.push_back(bridge);
      } else {
        // File-order emerging chunk (the live-serving steady state).
        const size_t count = static_cast<size_t>(rng.UniformInt(1, 8));
        for (size_t i = 0;
             i < count && emerging_cursor < emerging.size(); ++i) {
          batch.push_back(emerging[emerging_cursor++]);
        }
      }
      if (batch.empty()) continue;

      IngestResponse patch_response;
      IngestResponse invalidate_response;
      patch_engine.Ingest(batch, &patch_response);
      invalidate_engine.Ingest(batch, &invalidate_response);
      ASSERT_EQ(patch_response.status, Status::kOk)
          << patch_response.error << " schedule " << schedule_seed;
      // Graph-level outcomes cannot depend on the maintenance policy.
      EXPECT_EQ(invalidate_response.status, patch_response.status);
      EXPECT_EQ(invalidate_response.accepted, patch_response.accepted);
      EXPECT_EQ(invalidate_response.duplicates, patch_response.duplicates);
      EXPECT_EQ(invalidate_response.new_entities,
                patch_response.new_entities);
      EXPECT_EQ(invalidate_response.patched + invalidate_response.repaired,
                0u);
      ingested.insert(ingested.end(), batch.begin(), batch.end());
    } else {
      ++outcome->score_steps;
      const size_t count = static_cast<size_t>(rng.UniformInt(1, 6));
      std::vector<Triple> triples;
      for (size_t i = 0; i < count; ++i) {
        triples.push_back(pool[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(pool.size()) - 1))]);
      }
      std::string error;
      ASSERT_EQ(patch_engine.ValidateScore(triples, &error), Status::kOk)
          << error;

      const std::vector<double> patched_scores =
          patch_engine.ScoreBatch(ItemsFor(triples, /*request_seed=*/123));
      const std::vector<double> invalidated_scores =
          invalidate_engine.ScoreBatch(
              ItemsFor(triples, /*request_seed=*/123));

      // Differential gate: bit-identical scores and identical %.17g step
      // records, at every step of the schedule.
      const size_t s = static_cast<size_t>(step);
      ASSERT_EQ(StepSummary(s, patched_scores),
                StepSummary(s, invalidated_scores))
          << "schedule " << schedule_seed << " step " << step;

      // Static oracle: the dynamic live graph must equal a graph built
      // statically over base + ingested prefix, so the offline predictor
      // on that graph is the ground truth for both engines.
      std::vector<Triple> all = dataset.original_graph().Triples();
      all.insert(all.end(), ingested.begin(), ingested.end());
      const KnowledgeGraph oracle =
          BuildGraph(base_entities + fresh_entities, num_relations, all);
      const std::vector<double> offline =
          predictor.ScoreTriples(oracle, triples);
      for (size_t i = 0; i < triples.size(); ++i) {
        ASSERT_EQ(patched_scores[i], offline[i])
            << "schedule " << schedule_seed << " step " << step
            << " triple " << i << " vs static oracle";
      }
    }
  }

  const EngineStats patch_stats = patch_engine.Stats();
  const EngineStats invalidate_stats = invalidate_engine.Stats();
  EXPECT_EQ(invalidate_stats.cache_patched, 0u);
  EXPECT_EQ(invalidate_stats.cache_repaired, 0u);
  EXPECT_EQ(invalidate_stats.cache_fallback, 0u);
  EXPECT_EQ(patch_stats.graph_triples, invalidate_stats.graph_triples);
  EXPECT_EQ(patch_stats.graph_entities, invalidate_stats.graph_entities);
  EXPECT_EQ(patch_stats.ingested_triples, invalidate_stats.ingested_triples);
  outcome->patched = patch_stats.cache_patched;
  outcome->repaired = patch_stats.cache_repaired;
  outcome->fallback = patch_stats.cache_fallback;
}

TEST(CachePatchDifferentialTest, RandomizedChurnSchedules) {
  ScheduleOutcome total;
  for (uint64_t schedule = 0; schedule < 4; ++schedule) {
    ScheduleOutcome outcome;
    RunChurnSchedule(schedule, /*num_steps=*/48,
                     /*ingest_probability=*/schedule % 2 == 0 ? 0.35 : 0.6,
                     &outcome);
    EXPECT_GT(outcome.score_steps, 0u) << "schedule " << schedule;
    EXPECT_GT(outcome.ingest_steps, 0u) << "schedule " << schedule;
    total.patched += outcome.patched;
    total.repaired += outcome.repaired;
    total.fallback += outcome.fallback;
  }
  // The sweep must exercise all three maintenance outcomes — otherwise
  // the differential gate proved nothing about the patch path.
  EXPECT_GT(total.patched + total.repaired, 0u);
  EXPECT_GT(total.fallback, 0u);
}

TEST(CachePatchDifferentialTest, HighChurnEveryOtherStepIngests) {
  // Dense churn: roughly every other step ingests, so warm entries see
  // maintenance repeatedly between lookups.
  ScheduleOutcome outcome;
  RunChurnSchedule(/*schedule_seed=*/17, /*num_steps=*/40,
                   /*ingest_probability=*/0.5, &outcome);
  EXPECT_GT(outcome.ingest_steps, 0u);
  EXPECT_GT(outcome.score_steps, 0u);
  EXPECT_GT(outcome.patched + outcome.repaired + outcome.fallback, 0u);
}

}  // namespace
}  // namespace dekg::serve
