// End-to-end integration: synthesize a small DEKG dataset, train DEKG-ILP
// for a few epochs, and verify (a) the loss decreases and (b) ranking
// quality beats the random-scorer baseline on both link kinds.
#include <gtest/gtest.h>

#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"

namespace dekg {
namespace {

// Scores every triple with noise: the chance floor for the evaluator.
class RandomPredictor : public LinkPredictor {
 public:
  std::string Name() const override { return "Random"; }
  std::vector<double> ScoreTriples(const KnowledgeGraph&,
                                   const std::vector<Triple>& triples) override {
    std::vector<double> out;
    out.reserve(triples.size());
    for (size_t i = 0; i < triples.size(); ++i) out.push_back(rng_.UniformDouble());
    return out;
  }
  int64_t ParameterCount() const override { return 0; }

 private:
  Rng rng_{99};
};

DekgDataset SmallDataset() {
  datagen::SchemaConfig schema;
  schema.num_types = 6;
  schema.num_relations = 18;
  schema.num_entities = 220;
  schema.avg_degree = 6.0;
  schema.num_rules = 8;
  datagen::SplitConfig split;
  split.max_test_links = 60;
  return datagen::MakeDekgDataset("smoke", schema, split, /*seed=*/5);
}

TEST(IntegrationSmokeTest, DekgIlpTrainsAndBeatsRandom) {
  DekgDataset dataset = SmallDataset();
  ASSERT_GT(dataset.train_triples().size(), 200u);
  ASSERT_GT(dataset.test_links().size(), 20u);

  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  config.num_contrastive_samples = 4;
  core::DekgIlpModel model(config, /*seed=*/1);

  core::TrainConfig train;
  train.epochs = 6;
  train.max_triples_per_epoch = 250;
  train.seed = 2;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  std::vector<double> losses = trainer.Train();
  ASSERT_EQ(losses.size(), 6u);
  // Loss should drop from the first epoch to the last two.
  EXPECT_LT((losses[4] + losses[5]) / 2.0, losses[0])
      << "training did not reduce the loss";

  EvalConfig eval;
  eval.num_entity_negatives = 24;
  eval.max_links = 40;
  core::DekgIlpPredictor predictor(&model);
  EvalResult trained = Evaluate(&predictor, dataset, eval);

  RandomPredictor random;
  EvalResult chance = Evaluate(&random, dataset, eval);

  EXPECT_GT(trained.overall.mrr, chance.overall.mrr * 1.5)
      << "trained MRR " << trained.overall.mrr << " vs chance "
      << chance.overall.mrr;
  EXPECT_GT(trained.enclosing.num_tasks, 0);
  EXPECT_GT(trained.bridging.num_tasks, 0);
  // The headline claim: bridging links are predictable at all.
  EXPECT_GT(trained.bridging.mrr, chance.bridging.mrr * 1.3);
}

}  // namespace
}  // namespace dekg
