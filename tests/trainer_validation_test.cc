// Validation-based model selection (TrainWithValidation) and the MEAN
// baseline's test-time aggregation.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/mean.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "datagen/synthetic_kg.h"

namespace dekg {
namespace {

DekgDataset SmallDataset(uint64_t seed) {
  datagen::SchemaConfig schema;
  schema.num_types = 5;
  schema.num_relations = 14;
  schema.num_entities = 160;
  datagen::SplitConfig split;
  split.valid_fraction = 0.3;
  split.max_test_links = 40;
  return datagen::MakeDekgDataset("valid-test", schema, split, seed);
}

TEST(TrainWithValidationTest, ReturnsMrrAndRestoresBestState) {
  DekgDataset dataset = SmallDataset(4);
  ASSERT_FALSE(dataset.valid_links().empty());
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  config.num_contrastive_samples = 2;
  core::DekgIlpModel model(config, 5);
  core::TrainConfig train;
  train.epochs = 4;
  train.max_triples_per_epoch = 150;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  EvalConfig eval;
  eval.num_entity_negatives = 12;
  eval.max_links = 20;
  const double best = trainer.TrainWithValidation(eval, /*eval_every=*/2);
  EXPECT_GT(best, 0.0);
  EXPECT_LE(best, 1.0);

  // The restored state must reproduce the reported validation MRR.
  DekgDataset valid_view("v", dataset.num_original_entities(),
                         dataset.num_emerging_entities(),
                         dataset.num_relations(), dataset.train_triples(),
                         dataset.emerging_triples(), {},
                         dataset.valid_links());
  core::DekgIlpPredictor predictor(&model);
  EvalResult check = Evaluate(&predictor, valid_view, eval);
  EXPECT_NEAR(check.overall.mrr, best, 1e-9);
}

TEST(TrainWithValidationDeathTest, RequiresValidLinks) {
  std::vector<Triple> train{{0, 0, 1}, {1, 1, 2}};
  DekgDataset dataset("no-valid", 3, 1, 2, train, {}, {}, {});
  core::DekgIlpConfig config;
  config.num_relations = 2;
  config.dim = 8;
  core::DekgIlpModel model(config, 6);
  core::TrainConfig tc;
  core::DekgIlpTrainer trainer(&model, &dataset, tc);
  EXPECT_DEATH(trainer.TrainWithValidation(EvalConfig{}), "valid links");
}

TEST(MeanBaselineTest, TrainsAsTransEAndAggregatesUnseen) {
  DekgDataset dataset = SmallDataset(7);
  baselines::KgeConfig kge;
  kge.num_entities = dataset.num_total_entities();
  kge.num_relations = dataset.num_relations();
  kge.dim = 16;
  baselines::Mean model(kge);
  model.SetEmergingRange(dataset.num_original_entities(),
                         dataset.num_total_entities());
  baselines::KgeTrainConfig train;
  train.epochs = 20;
  std::vector<double> losses = TrainKgeModel(&model, dataset, train);
  EXPECT_LT(losses.back(), losses.front());

  // Test-time scores are finite for both link kinds.
  std::vector<Triple> batch;
  for (const LabeledLink& l : dataset.test_links()) {
    batch.push_back(l.triple);
    if (batch.size() == 6) break;
  }
  std::vector<double> scores =
      model.ScoreTriples(dataset.inference_graph(), batch);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(MeanBaselineTest, UnseenEmbeddingDiffersFromRawRow) {
  DekgDataset dataset = SmallDataset(8);
  baselines::KgeConfig kge;
  kge.num_entities = dataset.num_total_entities();
  kge.num_relations = dataset.num_relations();
  kge.dim = 16;
  baselines::Mean with_agg(kge);
  baselines::Mean without_agg(kge);  // same seed -> identical params
  with_agg.SetEmergingRange(dataset.num_original_entities(),
                            dataset.num_total_entities());
  // Pick an emerging entity with neighbors.
  EntityId emerging = -1;
  for (const Triple& t : dataset.emerging_triples()) {
    emerging = t.head;
    break;
  }
  ASSERT_GE(emerging, 0);
  Triple probe{0, 0, emerging};
  double aggregated =
      with_agg.ScoreTriples(dataset.inference_graph(), {probe})[0];
  double raw = without_agg.ScoreTriples(dataset.inference_graph(), {probe})[0];
  EXPECT_NE(aggregated, raw);
}

}  // namespace
}  // namespace dekg
