#include "eval/significance.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dekg {
namespace {

TEST(SignificanceTest, ClearWinnerGetsTinyPValue) {
  // A always rank 1, B always rank 10.
  std::vector<double> a(100, 1.0);
  std::vector<double> b(100, 10.0);
  BootstrapResult result = PairedBootstrapMrr(a, b, 1000, 1);
  EXPECT_DOUBLE_EQ(result.mrr_a, 1.0);
  EXPECT_NEAR(result.mrr_b, 0.1, 1e-9);
  EXPECT_LT(result.p_value, 0.01);
  EXPECT_GT(result.diff_low, 0.0);
}

TEST(SignificanceTest, IdenticalModelsNotSignificant) {
  Rng rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    double rank = 1.0 + static_cast<double>(rng.UniformUint64(20));
    a.push_back(rank);
    b.push_back(rank);
  }
  BootstrapResult result = PairedBootstrapMrr(a, b, 500, 3);
  EXPECT_DOUBLE_EQ(result.mrr_a, result.mrr_b);
  // diff == 0 on every resample -> p = 1 (H0 never rejected).
  EXPECT_GT(result.p_value, 0.9);
  EXPECT_LE(result.diff_low, 0.0);
  EXPECT_GE(result.diff_high, 0.0);
}

TEST(SignificanceTest, NoisyOverlapGivesIntermediateP) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(1.0 + static_cast<double>(rng.UniformUint64(10)));
    b.push_back(1.0 + static_cast<double>(rng.UniformUint64(10)));
  }
  BootstrapResult result = PairedBootstrapMrr(a, b, 500, 5);
  EXPECT_GT(result.p_value, 0.001);
  EXPECT_LT(result.p_value, 1.0);
}

TEST(SignificanceTest, ConfidenceIntervalBracketsPointEstimate) {
  Rng rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 80; ++i) {
    a.push_back(1.0 + static_cast<double>(rng.UniformUint64(5)));
    b.push_back(2.0 + static_cast<double>(rng.UniformUint64(8)));
  }
  BootstrapResult result = PairedBootstrapMrr(a, b, 800, 7);
  const double point = result.mrr_a - result.mrr_b;
  EXPECT_LE(result.diff_low, point + 1e-9);
  EXPECT_GE(result.diff_high, point - 1e-9);
}

TEST(SignificanceDeathTest, MisalignedListsAbort) {
  std::vector<double> a(10, 1.0);
  std::vector<double> b(9, 1.0);
  EXPECT_DEATH(PairedBootstrapMrr(a, b, 10, 1), "not task-aligned");
}

}  // namespace
}  // namespace dekg
