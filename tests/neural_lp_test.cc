#include "baselines/neural_lp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/graph_trainer.h"

namespace dekg::baselines {
namespace {

// Chain with a planted composition: r0(x,y) ∧ r1(y,z) alongside direct
// r2(x,z) facts, so the rule r0 ∧ r1 => r2 is learnable.
DekgDataset RuleWorld() {
  std::vector<Triple> train;
  for (EntityId base : {0, 3, 6, 9}) {
    train.push_back({base, 0, static_cast<EntityId>(base + 1)});
    train.push_back({static_cast<EntityId>(base + 1), 1,
                     static_cast<EntityId>(base + 2)});
    train.push_back({base, 2, static_cast<EntityId>(base + 2)});
  }
  std::vector<Triple> emerging{{14, 0, 15}, {15, 1, 16}};
  std::vector<LabeledLink> test{{{14, 2, 16}, LinkKind::kEnclosing},
                                {{0, 2, 15}, LinkKind::kBridging}};
  return DekgDataset("rule-world", 14, 3, 3, train, emerging, {}, test);
}

TEST(NeuralLpTest, PathMassReachesConnectedTail) {
  DekgDataset dataset = RuleWorld();
  NeuralLpConfig config;
  config.num_relations = dataset.num_relations();
  NeuralLp model(config, 1);
  // Untrained, attention is near-uniform: a connected pair gets positive
  // mass, a disconnected pair gets exactly zero.
  ag::Var connected =
      model.ScoreLink(dataset.inference_graph(), {14, 2, 16});
  EXPECT_GT(connected.value().Data()[0], 0.0f);
}

TEST(NeuralLpTest, BridgingLinkHasZeroPathMass) {
  DekgDataset dataset = RuleWorld();
  NeuralLpConfig config;
  config.num_relations = dataset.num_relations();
  NeuralLp model(config, 2);
  ag::Var bridging = model.ScoreLink(dataset.inference_graph(), {0, 2, 15});
  // log(1 + 0) = 0: the topological limitation, shared with RuleN/Grail.
  EXPECT_FLOAT_EQ(bridging.value().Data()[0], 0.0f);
}

TEST(NeuralLpTest, TrainingLearnsTheCompositionRule) {
  DekgDataset dataset = RuleWorld();
  NeuralLpConfig config;
  config.num_relations = dataset.num_relations();
  NeuralLp model(config, 3);
  GraphTrainConfig train;
  train.epochs = 30;
  train.lr = 0.1;
  std::vector<double> losses = TrainGraphModel(
      &model,
      [&model](const KnowledgeGraph& g, const Triple& t, bool, Rng*) {
        return model.ScoreLink(g, t);
      },
      dataset, train);
  EXPECT_LT(losses.back(), losses.front());

  // After training, the true enclosing link outranks corruptions whose
  // tail has no r0-r1 path from the head.
  double true_score =
      model.ScoreTriples(dataset.inference_graph(), {{14, 2, 16}})[0];
  double wrong_tail =
      model.ScoreTriples(dataset.inference_graph(), {{14, 2, 15}})[0];
  EXPECT_GT(true_score, wrong_tail);
}

TEST(NeuralLpTest, IdentityOperatorAdmitsShortPaths) {
  // Direct r3(x, y) equivalence: a length-1 body must be expressible even
  // with T = 2 steps thanks to the identity operator.
  std::vector<Triple> train;
  for (EntityId base = 0; base < 8; base += 2) {
    train.push_back({base, 0, static_cast<EntityId>(base + 1)});
    train.push_back({base, 1, static_cast<EntityId>(base + 1)});
  }
  DekgDataset dataset("equiv", 8, 2, 2, train, {{8, 0, 9}},
                      {{{8, 1, 9}, LinkKind::kEnclosing}}, {});
  NeuralLpConfig config;
  config.num_relations = 2;
  config.num_steps = 2;
  NeuralLp model(config, 4);
  ag::Var s = model.ScoreLink(dataset.inference_graph(), {8, 1, 9});
  EXPECT_GT(s.value().Data()[0], 0.0f);
}

TEST(NeuralLpTest, AttentionGradientsFlow) {
  DekgDataset dataset = RuleWorld();
  NeuralLpConfig config;
  config.num_relations = dataset.num_relations();
  NeuralLp model(config, 5);
  model.ZeroGrad();
  ag::Var s = model.ScoreLink(dataset.inference_graph(), {14, 2, 16});
  s.Backward();
  EXPECT_TRUE(model.parameters()[0].var.has_grad());
  // Gradient touches the query relation's row only.
  const Tensor& g = model.parameters()[0].var.grad();
  double row2 = 0.0, row0 = 0.0;
  for (int64_t j = 0; j < g.dim(1); ++j) {
    row2 += std::fabs(g.At(2, j));
    row0 += std::fabs(g.At(0, j));
  }
  EXPECT_GT(row2, 0.0);
  EXPECT_EQ(row0, 0.0);
}

TEST(NeuralLpTest, ScoresAreFiniteOnRandomQueries) {
  DekgDataset dataset = RuleWorld();
  NeuralLpConfig config;
  config.num_relations = dataset.num_relations();
  NeuralLp model(config, 6);
  std::vector<Triple> batch;
  for (EntityId h = 0; h < 5; ++h) {
    for (RelationId r = 0; r < 3; ++r) batch.push_back({h, r, 12});
  }
  std::vector<double> scores =
      model.ScoreTriples(dataset.inference_graph(), batch);
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
}

TEST(DrumTest, MultiChannelExpressesTwoDistinctRules) {
  // Two different bodies imply the same head relation: r0∘r1 => r3 and
  // r2 (direct equivalence) => r3. DRUM (2 channels) can commit one
  // channel to each body; Neural LP (1 channel) must compromise.
  std::vector<Triple> train;
  for (EntityId base : {0, 3, 6}) {
    train.push_back({base, 0, static_cast<EntityId>(base + 1)});
    train.push_back({static_cast<EntityId>(base + 1), 1,
                     static_cast<EntityId>(base + 2)});
    train.push_back({base, 3, static_cast<EntityId>(base + 2)});
  }
  for (EntityId base : {9, 11}) {
    train.push_back({base, 2, static_cast<EntityId>(base + 1)});
    train.push_back({base, 3, static_cast<EntityId>(base + 1)});
  }
  DekgDataset dataset("two-rules", 13, 3, 4, train, {{13, 0, 14}, {14, 1, 15}},
                      {{{13, 3, 15}, LinkKind::kEnclosing}}, {});

  auto train_model = [&](int32_t channels) {
    NeuralLpConfig config;
    config.num_relations = 4;
    config.num_rule_channels = channels;
    auto model = std::make_unique<NeuralLp>(config, 7);
    GraphTrainConfig tc;
    tc.epochs = 40;
    tc.lr = 0.1;
    tc.seed = 8;
    TrainGraphModel(
        model.get(),
        [m = model.get()](const KnowledgeGraph& g, const Triple& t, bool,
                          Rng*) { return m->ScoreLink(g, t); },
        dataset, tc);
    return model;
  };
  auto drum = train_model(2);
  // Both rule bodies must be usable by the 2-channel model: the
  // composition-derived enclosing link and a direct-equivalence pair both
  // outscore a disconnected corruption.
  const KnowledgeGraph& g = dataset.inference_graph();
  double comp = drum->ScoreTriples(g, {{13, 3, 15}})[0];
  double equiv = drum->ScoreTriples(g, {{9, 3, 10}})[0];
  double junk = drum->ScoreTriples(g, {{13, 3, 9}})[0];
  EXPECT_GT(comp, junk);
  EXPECT_GT(equiv, junk);
}

TEST(DrumTest, ParameterCountScalesWithChannels) {
  NeuralLpConfig one;
  one.num_relations = 5;
  NeuralLpConfig three = one;
  three.num_rule_channels = 3;
  NeuralLp a(one, 1), b(three, 1);
  EXPECT_EQ(b.ParameterCount(), 3 * a.ParameterCount());
}

TEST(DrumTest, SingleChannelMatchesNeuralLpScores) {
  // num_rule_channels = 1 must be byte-identical to the base model.
  NeuralLpConfig config;
  config.num_relations = 3;
  config.num_rule_channels = 1;
  NeuralLp a(config, 9);
  NeuralLp b(config, 9);
  KnowledgeGraph g(4, 3);
  g.AddTriple({0, 0, 1});
  g.AddTriple({1, 1, 2});
  g.Build();
  EXPECT_FLOAT_EQ(a.ScoreLink(g, {0, 2, 2}).value().Data()[0],
                  b.ScoreLink(g, {0, 2, 2}).value().Data()[0]);
}

}  // namespace
}  // namespace dekg::baselines
