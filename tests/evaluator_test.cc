#include "eval/evaluator.h"

#include <gtest/gtest.h>

namespace dekg {
namespace {

TEST(RankOfTest, StrictOrdering) {
  EXPECT_DOUBLE_EQ(RankOf(5.0, {1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(RankOf(2.5, {1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(RankOf(0.0, {1.0, 2.0, 3.0}), 4.0);
}

TEST(RankOfTest, TiesCountHalf) {
  EXPECT_DOUBLE_EQ(RankOf(2.0, {2.0, 2.0}), 2.0);      // 1 + 0 + 2/2
  EXPECT_DOUBLE_EQ(RankOf(2.0, {3.0, 2.0, 1.0}), 2.5);  // 1 + 1 + 1/2
}

TEST(RankOfTest, EmptyNegativesIsRankOne) {
  EXPECT_DOUBLE_EQ(RankOf(0.0, {}), 1.0);
}

TEST(RankingMetricsTest, AccumulateAndFinalize) {
  RankingMetrics m;
  m.Accumulate(1.0);
  m.Accumulate(4.0);
  m.Accumulate(20.0);
  m.Finalize();
  EXPECT_EQ(m.num_tasks, 3);
  EXPECT_NEAR(m.mrr, (1.0 + 0.25 + 0.05) / 3.0, 1e-9);
  EXPECT_NEAR(m.hits_at_1, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.hits_at_5, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.hits_at_10, 2.0 / 3.0, 1e-9);
}

TEST(RankingMetricsTest, MergeSumsBeforeFinalize) {
  RankingMetrics a, b;
  a.Accumulate(1.0);
  b.Accumulate(2.0);
  a.Merge(b);
  a.Finalize();
  EXPECT_EQ(a.num_tasks, 2);
  EXPECT_NEAR(a.mrr, 0.75, 1e-9);
}

// An oracle that scores the dataset's known positives highest.
class OraclePredictor : public LinkPredictor {
 public:
  explicit OraclePredictor(const DekgDataset* dataset) : dataset_(dataset) {}
  std::string Name() const override { return "Oracle"; }
  std::vector<double> ScoreTriples(const KnowledgeGraph&,
                                   const std::vector<Triple>& triples) override {
    std::vector<double> scores;
    for (const Triple& t : triples) {
      scores.push_back(dataset_->filter_set().count(t) > 0 ? 1.0 : 0.0);
    }
    return scores;
  }
  int64_t ParameterCount() const override { return 0; }

 private:
  const DekgDataset* dataset_;
};

class ConstantPredictor : public LinkPredictor {
 public:
  std::string Name() const override { return "Constant"; }
  std::vector<double> ScoreTriples(const KnowledgeGraph&,
                                   const std::vector<Triple>& triples) override {
    return std::vector<double>(triples.size(), 0.0);
  }
  int64_t ParameterCount() const override { return 0; }
};

DekgDataset TinyDataset() {
  // 4 original (0-3), 3 emerging (4-6), 3 relations.
  std::vector<Triple> train{{0, 0, 1}, {1, 1, 2}, {2, 2, 3}, {0, 1, 3}};
  std::vector<Triple> emerging{{4, 0, 5}, {5, 1, 6}};
  std::vector<LabeledLink> test{{{4, 2, 6}, LinkKind::kEnclosing},
                                {{0, 0, 4}, LinkKind::kBridging},
                                {{5, 1, 2}, LinkKind::kBridging}};
  return DekgDataset("tiny", 4, 3, 3, train, emerging, {}, test);
}

TEST(EvaluatorTest, OracleGetsPerfectScores) {
  DekgDataset dataset = TinyDataset();
  OraclePredictor oracle(&dataset);
  EvalConfig config;
  config.num_entity_negatives = 5;
  EvalResult result = Evaluate(&oracle, dataset, config);
  EXPECT_DOUBLE_EQ(result.overall.mrr, 1.0);
  EXPECT_DOUBLE_EQ(result.overall.hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(result.enclosing.hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(result.bridging.hits_at_1, 1.0);
}

TEST(EvaluatorTest, ConstantScorerLandsMidRank) {
  DekgDataset dataset = TinyDataset();
  ConstantPredictor constant;
  EvalConfig config;
  config.num_entity_negatives = 5;
  EvalResult result = Evaluate(&constant, dataset, config);
  // All ties: expected rank = 1 + n/2 so MRR well below 1 and above 0.
  EXPECT_LT(result.overall.mrr, 0.5);
  EXPECT_GT(result.overall.mrr, 0.1);
  EXPECT_DOUBLE_EQ(result.overall.hits_at_1, 0.0);
}

TEST(EvaluatorTest, TaskCountsPerLink) {
  DekgDataset dataset = TinyDataset();
  ConstantPredictor constant;
  EvalConfig config;
  config.num_entity_negatives = 3;
  config.include_relation_task = true;
  EvalResult result = Evaluate(&constant, dataset, config);
  // 3 links x 3 tasks.
  EXPECT_EQ(result.overall.num_tasks, 9);
  EXPECT_EQ(result.enclosing.num_tasks, 3);
  EXPECT_EQ(result.bridging.num_tasks, 6);

  config.include_relation_task = false;
  result = Evaluate(&constant, dataset, config);
  EXPECT_EQ(result.overall.num_tasks, 6);
}

TEST(EvaluatorTest, MaxLinksCapRespected) {
  DekgDataset dataset = TinyDataset();
  ConstantPredictor constant;
  EvalConfig config;
  config.num_entity_negatives = 3;
  config.max_links = 1;
  EvalResult result = Evaluate(&constant, dataset, config);
  EXPECT_EQ(result.overall.num_tasks, 3);
}

TEST(EvaluatorTest, DeterministicForFixedSeed) {
  DekgDataset dataset = TinyDataset();
  OraclePredictor oracle(&dataset);
  EvalConfig config;
  config.seed = 5;
  EvalResult a = Evaluate(&oracle, dataset, config);
  EvalResult b = Evaluate(&oracle, dataset, config);
  EXPECT_DOUBLE_EQ(a.overall.mrr, b.overall.mrr);
  EXPECT_EQ(a.overall.num_tasks, b.overall.num_tasks);
}

// Filtered setting: a corrupted triple that is itself a known positive must
// never appear as a negative. The oracle scores known positives 1.0, so if
// filtering failed it would tie with the target and push its rank above 1.
TEST(EvaluatorTest, FilteredNegativesExcludeKnownTriples) {
  DekgDataset dataset = TinyDataset();
  OraclePredictor oracle(&dataset);
  EvalConfig config;
  config.num_entity_negatives = 6;  // small world: forces collisions
  EvalResult result = Evaluate(&oracle, dataset, config);
  EXPECT_DOUBLE_EQ(result.overall.hits_at_1, 1.0);
}

}  // namespace
}  // namespace dekg
