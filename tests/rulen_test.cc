#include "baselines/rulen.h"

#include <gtest/gtest.h>

namespace dekg::baselines {
namespace {

// Original KG with a strong composition pattern r0(x,y) ∧ r1(y,z) =>
// r2(x,z), instantiated several times, plus an equivalence pattern
// r3(x,y) => r0(x,y).
DekgDataset RuleDataset() {
  std::vector<Triple> train;
  // Composition instances over entity chains (0,1,2), (3,4,5), (6,7,8).
  for (EntityId base : {0, 3, 6}) {
    train.push_back({base, 0, base + 1});
    train.push_back({static_cast<EntityId>(base + 1), 1,
                     static_cast<EntityId>(base + 2)});
    train.push_back({base, 2, static_cast<EntityId>(base + 2)});
  }
  // Equivalence instances.
  train.push_back({0, 3, 1});
  train.push_back({3, 3, 4});
  train.push_back({6, 3, 7});
  // Emerging KG replicates the body of the composition rule only.
  std::vector<Triple> emerging{{12, 0, 13}, {13, 1, 14}};
  std::vector<LabeledLink> test{{{12, 2, 14}, LinkKind::kEnclosing},
                                {{0, 2, 13}, LinkKind::kBridging}};
  return DekgDataset("rules", 12, 3, 4, train, emerging, {}, test);
}

TEST(RuleNTest, MinesCompositionRule) {
  DekgDataset dataset = RuleDataset();
  RulenConfig config;
  config.min_support = 2;
  config.min_confidence = 0.1;
  RuleN model(config);
  model.Mine(dataset);
  bool found = false;
  for (const auto& rule : model.rules()) {
    if (rule.head == 2 && rule.body.size() == 2 && rule.body[0].rel == 0 &&
        !rule.body[0].inverse && rule.body[1].rel == 1 &&
        !rule.body[1].inverse) {
      found = true;
      EXPECT_GT(rule.confidence, 0.3);
    }
  }
  EXPECT_TRUE(found) << "composition rule r0 ∧ r1 => r2 not mined";
}

TEST(RuleNTest, MinesEquivalenceRule) {
  DekgDataset dataset = RuleDataset();
  RulenConfig config;
  config.min_support = 2;
  config.min_confidence = 0.1;
  RuleN model(config);
  model.Mine(dataset);
  bool found = false;
  for (const auto& rule : model.rules()) {
    if (rule.head == 0 && rule.body.size() == 1 && rule.body[0].rel == 3 &&
        !rule.body[0].inverse) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "equivalence rule r3 => r0 not mined";
}

TEST(RuleNTest, ExcludesTrivialSelfRule) {
  DekgDataset dataset = RuleDataset();
  RuleN model(RulenConfig{});
  model.Mine(dataset);
  for (const auto& rule : model.rules()) {
    if (rule.body.size() == 1) {
      EXPECT_FALSE(rule.body[0].rel == rule.head && !rule.body[0].inverse)
          << "trivial rule r => r leaked";
    }
  }
}

TEST(RuleNTest, EnclosingLinkWithBodyPathScoresPositive) {
  DekgDataset dataset = RuleDataset();
  RulenConfig config;
  config.min_support = 2;
  config.min_confidence = 0.1;
  RuleN model(config);
  model.Mine(dataset);
  // Enclosing test link (12, 2, 14) has body path 12 -r0-> 13 -r1-> 14 in
  // the inference graph.
  std::vector<double> scores =
      model.ScoreTriples(dataset.inference_graph(), {{12, 2, 14}});
  EXPECT_GT(scores[0], 0.2);
}

TEST(RuleNTest, BridgingLinkScoresZero) {
  DekgDataset dataset = RuleDataset();
  RuleN model(RulenConfig{});
  model.Mine(dataset);
  // No path crosses the cut: rule methods collapse on bridging links.
  std::vector<double> scores =
      model.ScoreTriples(dataset.inference_graph(), {{0, 2, 13}});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

TEST(RuleNTest, NoisyOrCombinationMonotone) {
  DekgDataset dataset = RuleDataset();
  RulenConfig config;
  config.min_support = 2;
  config.min_confidence = 0.05;
  RuleN model(config);
  model.Mine(dataset);
  // A triple with both an equivalence and a composition witness scores at
  // least as high as one with a single witness.
  std::vector<double> scores = model.ScoreTriples(
      dataset.inference_graph(), {{0, 0, 1}, {12, 2, 14}});
  EXPECT_GE(scores[0], 0.0);
  EXPECT_LE(scores[0], 1.0);
  EXPECT_LE(scores[1], 1.0);
}

TEST(RuleNTest, MaxRulesPerRelationCap) {
  DekgDataset dataset = RuleDataset();
  RulenConfig config;
  config.min_support = 1;
  config.min_confidence = 0.0;
  config.max_rules_per_relation = 2;
  RuleN model(config);
  model.Mine(dataset);
  std::unordered_map<RelationId, int> per_head;
  for (const auto& rule : model.rules()) ++per_head[rule.head];
  for (const auto& [head, count] : per_head) EXPECT_LE(count, 2);
}

}  // namespace
}  // namespace dekg::baselines
