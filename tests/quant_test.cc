// Unit tier for src/quant/ (DESIGN.md §15): the scalar conversion
// primitives (round-half-to-even, the binary16 codec), the calibration
// pass and its degenerate inputs (all-zero rows, constant rows,
// single-column tensors, NaN/±inf rejection — never silent saturation),
// the per-row quantizers' error bounds, and the compute kernels checked
// against plain double-precision references over the dequantized
// payloads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "quant/qkernels.h"
#include "quant/quantize.h"
#include "tensor/tensor.h"

namespace dekg::quant {
namespace {

TEST(QuantScalarTest, RoundHalfToEvenTiesAndNegatives) {
  EXPECT_EQ(RoundHalfToEven(0.0f), 0);
  EXPECT_EQ(RoundHalfToEven(0.5f), 0);
  EXPECT_EQ(RoundHalfToEven(1.5f), 2);
  EXPECT_EQ(RoundHalfToEven(2.5f), 2);
  EXPECT_EQ(RoundHalfToEven(3.5f), 4);
  EXPECT_EQ(RoundHalfToEven(-0.5f), 0);
  EXPECT_EQ(RoundHalfToEven(-1.5f), -2);
  EXPECT_EQ(RoundHalfToEven(-2.5f), -2);
  EXPECT_EQ(RoundHalfToEven(-3.5f), -4);
  // Non-tie cases round to nearest as usual.
  EXPECT_EQ(RoundHalfToEven(1.49f), 1);
  EXPECT_EQ(RoundHalfToEven(1.51f), 2);
  EXPECT_EQ(RoundHalfToEven(-1.49f), -1);
  EXPECT_EQ(RoundHalfToEven(-1.51f), -2);
  EXPECT_EQ(RoundHalfToEven(126.5f), 126);
  EXPECT_EQ(RoundHalfToEven(-126.5f), -126);
}

TEST(QuantScalarTest, Fp16ExactValuesRoundTrip) {
  // Every value exactly representable in binary16 must round-trip to
  // identical bits.
  const float exact[] = {0.0f,    1.0f,   -1.0f,     0.5f,   -2.0f,
                         1024.0f, 65504.0f, -65504.0f, 0.25f, 6.103515625e-5f};
  for (float v : exact) {
    EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(v)), v) << "value " << v;
  }
  // Signed zero keeps its sign bit.
  EXPECT_EQ(Fp32ToFp16(-0.0f), 0x8000u);
  EXPECT_EQ(Fp32ToFp16(0.0f), 0x0000u);
}

TEST(QuantScalarTest, Fp16SubnormalsAndUnderflow) {
  // Smallest positive subnormal: 2^-24.
  const float min_sub = std::ldexp(1.0f, -24);
  EXPECT_EQ(Fp32ToFp16(min_sub), 0x0001u);
  EXPECT_EQ(Fp16ToFp32(uint16_t{0x0001}), min_sub);
  // Half of it is a tie with zero; even base rounds down to +0.
  EXPECT_EQ(Fp32ToFp16(min_sub * 0.5f), 0x0000u);
  // 1.5× the smallest subnormal is a tie between 1 and 2 ulps: ties to
  // even picks 2.
  EXPECT_EQ(Fp32ToFp16(min_sub * 1.5f), 0x0002u);
  // A subnormal magnitude rounds through the codec within half an ulp.
  const float v = std::ldexp(1.0f, -20);  // 16 ulps of the subnormal range
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(v)), v);
  // Rounding carry out of the largest subnormal (1023 * 2^-24) lands
  // exactly on the smallest normal (2^-14).
  const float min_normal = std::ldexp(1.0f, -14);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(std::ldexp(1023.9f, -24))), min_normal);
}

TEST(QuantScalarTest, Fp16FiniteOverflowSaturatesNeverInf) {
  // Finite values beyond half range saturate to ±65504 instead of
  // producing an infinity (the documented contract: calibration already
  // rejected non-finite input, so a finite float must stay finite).
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(65520.0f)), 65504.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(1.0e8f)), 65504.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(-1.0e30f)), -65504.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(std::numeric_limits<float>::max())),
            65504.0f);
}

TEST(QuantScalarTest, Fp16RoundTripErrorWithinHalfUlp) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.UniformDouble() * 8.0 - 4.0);
    const float back = Fp16ToFp32(Fp32ToFp16(v));
    // Relative error of binary16 round-to-nearest is 2^-11 for normals.
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * (1.0f / 2048.0f) + 1e-7f)
        << "value " << v;
  }
}

TEST(QuantCalibrationTest, MinMaxPerRow) {
  Tensor t({2, 3}, {1.0f, -2.0f, 3.0f, -4.0f, 0.0f, 4.0f});
  RowCalibration calib;
  std::string error;
  ASSERT_TRUE(CalibrateRows(t, &calib, &error)) << error;
  ASSERT_EQ(calib.rows, 2);
  ASSERT_EQ(calib.cols, 3);
  EXPECT_EQ(calib.row_min[0], -2.0f);
  EXPECT_EQ(calib.row_max[0], 3.0f);
  EXPECT_EQ(calib.row_min[1], -4.0f);
  EXPECT_EQ(calib.row_max[1], 4.0f);
}

TEST(QuantCalibrationTest, Rank1TensorIsOneRow) {
  Tensor t({4}, {0.5f, -1.5f, 2.5f, -0.5f});
  RowCalibration calib;
  std::string error;
  ASSERT_TRUE(CalibrateRows(t, &calib, &error)) << error;
  EXPECT_EQ(calib.rows, 1);
  EXPECT_EQ(calib.cols, 4);
  EXPECT_EQ(calib.row_min[0], -1.5f);
  EXPECT_EQ(calib.row_max[0], 2.5f);
}

TEST(QuantCalibrationTest, SingleColumnTensor) {
  // Degenerate width: one element per row still calibrates and
  // quantizes exactly (each row's sole value maps to ±127).
  Tensor t({3, 1}, {2.0f, -0.125f, 0.0f});
  QuantizedTensor q;
  std::string error;
  ASSERT_TRUE(QuantizeInt8(t, &q, &error)) << error;
  ASSERT_EQ(q.rows, 3);
  ASSERT_EQ(q.cols, 1);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -127);
  EXPECT_EQ(q.data[2], 0);
  Tensor back = Dequantize(q);
  EXPECT_EQ(back.At(0, 0), 2.0f);
  EXPECT_EQ(back.At(1, 0), -0.125f);
  EXPECT_EQ(back.At(2, 0), 0.0f);
}

TEST(QuantCalibrationTest, RejectsNaNWithPositionedError) {
  Tensor t({2, 2}, {1.0f, 2.0f, std::numeric_limits<float>::quiet_NaN(),
                    4.0f});
  RowCalibration calib;
  std::string error;
  EXPECT_FALSE(CalibrateRows(t, &calib, &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  EXPECT_NE(error.find("row 1"), std::string::npos) << error;
  EXPECT_NE(error.find("col 0"), std::string::npos) << error;
}

TEST(QuantCalibrationTest, RejectsInfinitiesThroughEveryQuantizer) {
  for (float bad : {std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    Tensor t({1, 3}, {1.0f, bad, 3.0f});
    QuantizedTensor qi;
    Fp16Tensor qh;
    std::string error;
    EXPECT_FALSE(QuantizeInt8(t, &qi, &error));
    EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
    error.clear();
    EXPECT_FALSE(QuantizeFp16(t, &qh, &error));
    EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
    // No silent saturation: the rejected containers hold no payload.
    EXPECT_TRUE(qi.data.empty());
    EXPECT_TRUE(qh.data.empty());
  }
}

TEST(QuantInt8Test, AllZeroRowDequantizesExactly) {
  Tensor t = Tensor::Zeros({2, 5});
  QuantizedTensor q;
  std::string error;
  ASSERT_TRUE(QuantizeInt8(t, &q, &error)) << error;
  // The documented convention: scale 1 for an all-zero row, so the
  // dequantized row is exact zeros (not 0 * garbage).
  EXPECT_EQ(q.scales[0], 1.0f);
  EXPECT_EQ(q.scales[1], 1.0f);
  Tensor back = Dequantize(q);
  for (int64_t i = 0; i < back.numel(); ++i) {
    EXPECT_EQ(back.Data()[i], 0.0f) << "element " << i;
  }
}

TEST(QuantInt8Test, ConstantRowIsExactAtFullScale) {
  Tensor t({2, 4}, {3.0f, 3.0f, 3.0f, 3.0f, -0.75f, -0.75f, -0.75f, -0.75f});
  QuantizedTensor q;
  std::string error;
  ASSERT_TRUE(QuantizeInt8(t, &q, &error)) << error;
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(q.data[j], 127);
    EXPECT_EQ(q.data[4 + j], -127);
  }
  Tensor back = Dequantize(q);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(back.At(0, j), 3.0f);
    EXPECT_EQ(back.At(1, j), -0.75f);
  }
}

TEST(QuantInt8Test, SymmetricSchemeZeroPointsAreZero) {
  Rng rng(11);
  Tensor t = Tensor::Uniform({6, 9}, -2.0f, 5.0f, &rng);
  QuantizedTensor q;
  std::string error;
  ASSERT_TRUE(QuantizeInt8(t, &q, &error)) << error;
  ASSERT_EQ(q.zero_points.size(), 6u);
  for (int32_t zp : q.zero_points) EXPECT_EQ(zp, 0);
}

TEST(QuantInt8Test, DequantizationErrorWithinHalfScalePerElement) {
  Rng rng(23);
  Tensor t = Tensor::Uniform({8, 16}, -3.0f, 3.0f, &rng);
  QuantizedTensor q;
  std::string error;
  ASSERT_TRUE(QuantizeInt8(t, &q, &error)) << error;
  Tensor back = Dequantize(q);
  for (int64_t i = 0; i < 8; ++i) {
    // Round-to-nearest quantization error is at most scale/2 per
    // element (plus a float rounding crumb from the rescale).
    const float bound = q.scales[static_cast<size_t>(i)] * 0.5f + 1e-6f;
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_LE(std::fabs(back.At(i, j) - t.At(i, j)), bound)
          << "element (" << i << ", " << j << ")";
    }
  }
}

TEST(QuantInt8Test, ExplicitCalibrationMatchesConvenienceOverload) {
  Rng rng(31);
  Tensor t = Tensor::Uniform({4, 7}, -1.0f, 1.0f, &rng);
  RowCalibration calib;
  QuantizedTensor via_calib;
  QuantizedTensor direct;
  std::string error;
  ASSERT_TRUE(CalibrateRows(t, &calib, &error)) << error;
  ASSERT_TRUE(QuantizeInt8(t, calib, &via_calib, &error)) << error;
  ASSERT_TRUE(QuantizeInt8(t, &direct, &error)) << error;
  EXPECT_EQ(via_calib.data, direct.data);
  EXPECT_EQ(via_calib.scales, direct.scales);
}

TEST(QuantRowTest, RejectsFp32AndMultiRowInput) {
  Tensor row({1, 4}, {1.0f, 2.0f, 3.0f, 4.0f});
  QuantRow out;
  std::string error;
  EXPECT_FALSE(QuantizeRow(row, Precision::kFp32, &out, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  Tensor two = Tensor::Ones({2, 4});
  EXPECT_FALSE(QuantizeRow(two, Precision::kInt8, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(QuantRowTest, RoundTripsBothPrecisions) {
  Tensor row({1, 6}, {0.5f, -1.25f, 2.0f, 0.0f, -0.01f, 1.75f});
  for (Precision p : {Precision::kInt8, Precision::kFp16}) {
    QuantRow q;
    std::string error;
    ASSERT_TRUE(QuantizeRow(row, p, &q, &error)) << error;
    EXPECT_EQ(q.dim, 6);
    EXPECT_EQ(q.precision, p);
    Tensor back = DequantizeRow(q);
    ASSERT_EQ(back.numel(), 6);
    const float bound = p == Precision::kInt8 ? 2.0f / 127.0f : 2.0f / 2048.0f;
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_LE(std::fabs(back.Data()[j] - row.Data()[j]), bound)
          << PrecisionName(p) << " element " << j;
    }
  }
}

TEST(QuantKernelTest, LaneDotI8MatchesScalarReference) {
  Rng rng(41);
  for (int64_t n : {1, 3, 7, 8, 16, 33, 100}) {
    std::vector<int8_t> a(static_cast<size_t>(n));
    std::vector<int8_t> b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] =
          static_cast<int8_t>(rng.UniformUint64(255)) - 127;
      b[static_cast<size_t>(i)] =
          static_cast<int8_t>(rng.UniformUint64(255)) - 127;
    }
    int64_t want = 0;
    for (int64_t i = 0; i < n; ++i) {
      want += static_cast<int64_t>(a[static_cast<size_t>(i)]) *
              static_cast<int64_t>(b[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(LaneDotI8(a.data(), b.data(), n), want) << "n " << n;
  }
}

TEST(QuantKernelTest, ActivationQuantizationIsRowContentPure) {
  Rng rng(43);
  std::vector<float> x(24);
  for (float& v : x) v = static_cast<float>(rng.UniformDouble() * 4.0 - 2.0);
  std::vector<int8_t> q1(24), q2(24);
  const float s1 = QuantizeActivationRow(x.data(), 24, q1.data());
  const float s2 = QuantizeActivationRow(x.data(), 24, q2.data());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(q1, q2);
  // All-zero activation: scale 1, all-zero payload.
  std::vector<float> zeros(8, 0.0f);
  std::vector<int8_t> qz(8, 99);
  EXPECT_EQ(QuantizeActivationRow(zeros.data(), 8, qz.data()), 1.0f);
  for (int8_t v : qz) EXPECT_EQ(v, 0);
}

// Double-precision reference for the int8 GEMM: quantize exactly as the
// kernel does, then accumulate in double over the dequantized factors.
// The kernel's int32 accumulation is exact, so the only float step is
// the final rescale — the reference must agree to float rounding.
TEST(QuantKernelTest, Int8MatMulMatchesDequantizedReference) {
  Rng rng(47);
  const int64_t m = 5, k = 12, n = 7;
  Tensor x = Tensor::Uniform({m, k}, -2.0f, 2.0f, &rng);
  Tensor w = Tensor::Uniform({k, n}, -1.0f, 1.0f, &rng);
  QuantMatrix qw;
  std::string error;
  ASSERT_TRUE(QuantizeMatrix(w, Precision::kInt8, &qw, &error)) << error;
  ASSERT_EQ(qw.in_dim, k);
  ASSERT_EQ(qw.out_dim, n);

  Tensor out = QuantMatMul(x, qw);
  ASSERT_EQ(out.dim(0), m);
  ASSERT_EQ(out.dim(1), n);

  std::vector<int8_t> qx(static_cast<size_t>(k));
  for (int64_t i = 0; i < m; ++i) {
    const float x_scale =
        QuantizeActivationRow(x.Data() + i * k, k, qx.data());
    for (int64_t j = 0; j < n; ++j) {
      int64_t acc = 0;
      for (int64_t d = 0; d < k; ++d) {
        acc += static_cast<int64_t>(qx[static_cast<size_t>(d)]) *
               static_cast<int64_t>(
                   qw.i8.data[static_cast<size_t>(j * k + d)]);
      }
      const float want = x_scale * qw.i8.scales[static_cast<size_t>(j)] *
                         static_cast<float>(acc);
      EXPECT_EQ(out.At(i, j), want) << "(" << i << ", " << j << ")";
    }
  }

  // End-to-end accuracy vs the fp32 product: bounded by the two
  // quantization steps (weight + activation).
  Tensor exact = MatMul(x, w);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(out.At(i, j), exact.At(i, j), 0.05)
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(QuantKernelTest, Fp16MatMulMatchesDecodedReference) {
  Rng rng(53);
  const int64_t m = 4, k = 10, n = 6;
  Tensor x = Tensor::Uniform({m, k}, -2.0f, 2.0f, &rng);
  Tensor w = Tensor::Uniform({k, n}, -1.0f, 1.0f, &rng);
  QuantMatrix qw;
  std::string error;
  ASSERT_TRUE(QuantizeMatrix(w, Precision::kFp16, &qw, &error)) << error;

  Tensor out = QuantMatMul(x, qw);
  // Reference: decode the stored fp16 weights to fp32 and run the exact
  // fp32 MatMul — storage rounding is the ONLY difference the fp16 path
  // is allowed to introduce.
  Tensor decoded({k, n});
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t d = 0; d < k; ++d) {
      decoded.At(d, j) =
          Fp16ToFp32(qw.f16.data[static_cast<size_t>(j * k + d)]);
    }
  }
  Tensor want = MatMul(x, decoded);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(out.At(i, j), want.At(i, j)) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(QuantKernelTest, QuantDistMultTracksFp32Scoring) {
  Rng rng(59);
  const int64_t dim = 16;
  Tensor head = Tensor::Uniform({1, dim}, -1.5f, 1.5f, &rng);
  Tensor tail = Tensor::Uniform({1, dim}, -1.5f, 1.5f, &rng);
  Tensor rel = Tensor::Uniform({dim}, -1.0f, 1.0f, &rng);

  double exact = 0.0;
  for (int64_t d = 0; d < dim; ++d) {
    exact += static_cast<double>(head.Data()[d]) *
             static_cast<double>(rel.Data()[d]) *
             static_cast<double>(tail.Data()[d]);
  }

  for (Precision p : {Precision::kInt8, Precision::kFp16}) {
    QuantRow qh, qt;
    std::string error;
    ASSERT_TRUE(QuantizeRow(head, p, &qh, &error)) << error;
    ASSERT_TRUE(QuantizeRow(tail, p, &qt, &error)) << error;
    const float got = QuantDistMult(qh, rel.Data(), qt);
    const double bound = p == Precision::kInt8 ? 0.05 : 0.01;
    EXPECT_NEAR(got, exact, bound) << PrecisionName(p);
    // Deterministic: recomputing produces the same bits.
    EXPECT_EQ(QuantDistMult(qh, rel.Data(), qt), got);
  }
}

TEST(QuantContainerTest, PayloadBytesAccountRowsAndMetadata) {
  Tensor t = Tensor::Ones({3, 8});
  QuantizedTensor qi;
  Fp16Tensor qh;
  std::string error;
  ASSERT_TRUE(QuantizeInt8(t, &qi, &error)) << error;
  ASSERT_TRUE(QuantizeFp16(t, &qh, &error)) << error;
  // int8: 24 payload bytes + 3 scales (4 B) + 3 zero-points (4 B).
  EXPECT_EQ(qi.PayloadBytes(), 24u + 12u + 12u);
  EXPECT_EQ(qh.PayloadBytes(), 48u);

  Tensor row = Tensor::Ones({1, 8});
  QuantRow qr;
  ASSERT_TRUE(QuantizeRow(row, Precision::kInt8, &qr, &error)) << error;
  EXPECT_EQ(qr.PayloadBytes(), 8u + 4u);  // payload + scale
  ASSERT_TRUE(QuantizeRow(row, Precision::kFp16, &qr, &error)) << error;
  EXPECT_EQ(qr.PayloadBytes(), 16u);
}

TEST(QuantContainerTest, PrecisionNamesRoundTrip) {
  for (Precision p : {Precision::kFp32, Precision::kFp16, Precision::kInt8}) {
    Precision parsed;
    ASSERT_TRUE(ParsePrecision(PrecisionName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  Precision parsed;
  EXPECT_FALSE(ParsePrecision("int4", &parsed));
  EXPECT_FALSE(ParsePrecision("", &parsed));
}

}  // namespace
}  // namespace dekg::quant
