// Live-graph ingestion and engine invalidation tests (DESIGN.md §9).
//
// The load-bearing property is the ordering invariant: building a prefix
// statically and appending the rest dynamically must produce adjacency
// identical to building everything statically — same edge ids, same
// per-node order — because subgraph extraction (and therefore every
// online score) reads that order. On top of it sit the ISSUE's ingestion
// edge cases: atomic rejection of unknown relations and out-of-range
// entities, duplicate accounting, isolated (zero-incident-relation)
// entities scoring without a division by zero, and cache invalidation
// that leaves post-ingest scores bit-identical to a fresh engine built
// on the equivalent static graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dekg_ilp.h"
#include "datagen/synthetic_kg.h"
#include "graph/subgraph.h"
#include "serve/engine.h"
#include "serve/live_graph.h"

namespace dekg::serve {
namespace {

DekgDataset SyntheticDataset() {
  datagen::SchemaConfig schema;
  schema.num_types = 5;
  schema.num_relations = 14;
  schema.num_entities = 160;
  datagen::SplitConfig split;
  split.max_test_links = 40;
  return datagen::MakeDekgDataset("live", schema, split, /*seed=*/21);
}

void ExpectSameAdjacency(const KnowledgeGraph& a, const KnowledgeGraph& b,
                         EntityId node) {
  std::span<const int32_t> ea = a.IncidentEdges(node);
  std::span<const int32_t> eb = b.IncidentEdges(node);
  ASSERT_EQ(ea.size(), eb.size()) << "entity " << node;
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i], eb[i]) << "entity " << node << " slot " << i;
  }
}

TEST(LiveGraphTest, DynamicIngestConvergesToStaticBuild) {
  DekgDataset dataset = SyntheticDataset();
  ASSERT_FALSE(dataset.emerging_triples().empty());

  // Offline reference: train + emerging built statically.
  const KnowledgeGraph& offline = dataset.inference_graph();

  // Online: start from the train-only graph, ingest emerging in file
  // order — exactly what the serve tool does.
  LiveGraph live(dataset.original_graph(), LiveGraphConfig{});
  IngestReport report;
  std::string error;
  ASSERT_EQ(live.Ingest(dataset.emerging_triples(), &report, &error),
            Status::kOk)
      << error;
  EXPECT_EQ(report.accepted, dataset.emerging_triples().size());
  EXPECT_EQ(live.ingested_triples(), dataset.emerging_triples().size());

  const KnowledgeGraph& online = live.graph();
  ASSERT_EQ(online.num_entities(), offline.num_entities());
  ASSERT_EQ(online.num_triples(), offline.num_triples());
  for (EntityId e = 0; e < offline.num_entities(); ++e) {
    ExpectSameAdjacency(offline, online, e);
    EXPECT_EQ(offline.RelationComponentTable(e),
              online.RelationComponentTable(e))
        << "entity " << e;
  }

  // Same edge ids in the same order means extraction is bit-identical.
  SubgraphConfig config;
  int checked = 0;
  for (const LabeledLink& link : dataset.test_links()) {
    const Triple& t = link.triple;
    Subgraph a = ExtractSubgraph(offline, t.head, t.tail, t.rel, config);
    Subgraph b = ExtractSubgraph(online, t.head, t.tail, t.rel, config);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t i = 0; i < a.nodes.size(); ++i) {
      EXPECT_EQ(a.nodes[i].entity, b.nodes[i].entity);
      EXPECT_EQ(a.nodes[i].dist_head, b.nodes[i].dist_head);
      EXPECT_EQ(a.nodes[i].dist_tail, b.nodes[i].dist_tail);
    }
    for (size_t i = 0; i < a.edges.size(); ++i) {
      EXPECT_EQ(a.edges[i].src, b.edges[i].src);
      EXPECT_EQ(a.edges[i].rel, b.edges[i].rel);
      EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
    }
    if (++checked >= 10) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(LiveGraphTest, IngestGrowsEntitySpaceOnDemand) {
  // Base graph over 4 entities; ingest introduces ids 7 and 9.
  KnowledgeGraph base = BuildGraph(4, 3, {{0, 0, 1}, {1, 1, 2}, {2, 2, 3}});
  LiveGraph live(base, LiveGraphConfig{});

  IngestReport report;
  std::string error;
  ASSERT_EQ(live.Ingest({{3, 0, 7}, {7, 1, 9}}, &report, &error), Status::kOk)
      << error;
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.new_entities, 6u);  // space grew 4 -> 10
  EXPECT_EQ(live.graph().num_entities(), 10);
  // Touched = endpoints of accepted triples, deduped and ascending.
  EXPECT_EQ(report.touched_entities, (std::vector<EntityId>{3, 7, 9}));
  // Id 8 exists now but is isolated: legal, empty adjacency.
  EXPECT_EQ(live.graph().Degree(8), 0);
  EXPECT_EQ(live.graph().RelationComponentTable(8),
            (std::vector<int32_t>{0, 0, 0}));
}

TEST(LiveGraphTest, UnknownRelationRejectsWholeBatchAtomically) {
  KnowledgeGraph base = BuildGraph(4, 3, {{0, 0, 1}});
  LiveGraph live(base, LiveGraphConfig{});
  const int64_t before = live.graph().num_triples();

  // First triple is valid; the second's relation id is out of vocabulary.
  IngestReport report;
  std::string error;
  EXPECT_EQ(live.Ingest({{1, 1, 2}, {2, 3, 3}}, &report, &error),
            Status::kUnknownRelation);
  EXPECT_NE(error.find("relation"), std::string::npos);
  // Nothing was applied — not even the valid leading triple.
  EXPECT_EQ(live.graph().num_triples(), before);
  EXPECT_FALSE(live.graph().Contains({1, 1, 2}));
  EXPECT_EQ(report.accepted, 0u);
  EXPECT_TRUE(report.touched_entities.empty());
}

TEST(LiveGraphTest, BadEntityIdsRejectedCleanly) {
  KnowledgeGraph base = BuildGraph(4, 3, {{0, 0, 1}});
  LiveGraphConfig config;
  config.max_entities = 100;
  LiveGraph live(base, config);

  IngestReport report;
  std::string error;
  EXPECT_EQ(live.Ingest({{-1, 0, 2}}, &report, &error), Status::kBadEntity);
  EXPECT_EQ(live.Ingest({{0, 0, 100}}, &report, &error), Status::kBadEntity);
  EXPECT_EQ(live.graph().num_triples(), 1);
  EXPECT_EQ(live.graph().num_entities(), 4);

  // Scoring-side validation mirrors the same rules against the *current*
  // space: a never-grown id cannot be scored, a known one can.
  EXPECT_EQ(live.ValidateForScoring({{0, 0, 50}}, &error), Status::kBadEntity);
  EXPECT_EQ(live.ValidateForScoring({{0, 9, 1}}, &error),
            Status::kUnknownRelation);
  EXPECT_EQ(live.ValidateForScoring({}, &error), Status::kBadRequest);
  EXPECT_EQ(live.ValidateForScoring({{0, 0, 1}}, &error), Status::kOk);
}

TEST(LiveGraphTest, DuplicateTriplesAreCountedAndKept) {
  KnowledgeGraph base = BuildGraph(4, 3, {{0, 0, 1}});
  LiveGraph live(base, LiveGraphConfig{});

  // One already-present triple, one new triple sent twice: 3 accepted, 2
  // duplicates. Multiplicity is kept — it feeds the CLRM tables.
  IngestReport report;
  std::string error;
  ASSERT_EQ(live.Ingest({{0, 0, 1}, {1, 1, 2}, {1, 1, 2}}, &report, &error),
            Status::kOk)
      << error;
  EXPECT_EQ(report.accepted, 3u);
  EXPECT_EQ(report.duplicates, 2u);
  EXPECT_EQ(live.graph().num_triples(), 4);
  EXPECT_EQ(live.graph().RelationComponentTable(0),
            (std::vector<int32_t>{2, 0, 0}));
  EXPECT_EQ(live.graph().RelationComponentTable(1),
            (std::vector<int32_t>{2, 2, 0}));
}

// ----- Engine-level tests: embeddings, isolated entities, invalidation -----

core::DekgIlpConfig SmallModelConfig(int32_t num_relations) {
  core::DekgIlpConfig config;
  config.num_relations = num_relations;
  config.dim = 8;
  return config;
}

std::vector<ScoreItem> ItemsFor(const std::vector<Triple>& triples) {
  // The same per-index stream derivation DekgIlpPredictor uses (seed 123).
  std::vector<ScoreItem> items;
  for (size_t i = 0; i < triples.size(); ++i) {
    items.push_back({triples[i], MixSeed(123, i)});
  }
  return items;
}

TEST(LiveGraphTest, IsolatedEntityScoresWithoutDivisionByZero) {
  KnowledgeGraph base = BuildGraph(4, 3, {{0, 0, 1}, {1, 1, 2}, {2, 2, 3}});
  core::DekgIlpModel model(SmallModelConfig(3), /*seed=*/7);
  InferenceEngine engine(&model, base, EngineConfig{});

  // Grow the space past id 6 without giving 5 any incident triple.
  IngestResponse response;
  engine.Ingest({{3, 0, 6}}, &response);
  ASSERT_EQ(response.status, Status::kOk) << response.error;

  // Entity 5 exists, has zero incident relations — its CLRM fusion is the
  // all-zero embedding (MeanNonzero = 0 must not be divided by), and the
  // GSM side sees two disconnected endpoints. The score must be finite.
  std::string error;
  ASSERT_EQ(engine.ValidateScore({{5, 1, 0}}, &error), Status::kOk) << error;
  std::vector<double> scores = engine.ScoreBatch(ItemsFor({{5, 1, 0}}));
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_TRUE(std::isfinite(scores[0])) << scores[0];

  const Tensor& emb = engine.EntityEmbedding(5);
  ASSERT_EQ(emb.numel(), 8);
  for (int64_t d = 0; d < emb.numel(); ++d) {
    EXPECT_EQ(emb.Data()[d], 0.0f) << "dim " << d;
  }
}

TEST(LiveGraphTest, IngestRefreshesExactlyTheTouchedEmbeddings) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/7);
  InferenceEngine engine(&model, dataset.original_graph(), EngineConfig{});

  IngestResponse response;
  engine.Ingest(dataset.emerging_triples(), &response);
  ASSERT_EQ(response.status, Status::kOk) << response.error;
  EXPECT_EQ(response.accepted, dataset.emerging_triples().size());

  // Every row must now equal a fresh fusion of the current table — the
  // refresh touched everything it needed to.
  const KnowledgeGraph& graph = engine.graph();
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    Tensor fresh = model.clrm()->EmbedEntity(graph.RelationComponentTable(e))
                       .value();
    const Tensor& cached = engine.EntityEmbedding(e);
    ASSERT_EQ(cached.numel(), fresh.numel()) << "entity " << e;
    for (int64_t d = 0; d < fresh.numel(); ++d) {
      EXPECT_EQ(cached.Data()[d], fresh.Data()[d])
          << "entity " << e << " dim " << d;
    }
  }
  EXPECT_GT(engine.Stats().embedding_refreshes, 0u);
}

TEST(LiveGraphTest, InvalidationLeavesScoresEqualToFreshEngine) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/7);

  std::vector<Triple> targets;
  for (const LabeledLink& link : dataset.test_links()) {
    targets.push_back(link.triple);
    if (targets.size() >= 16) break;
  }
  ASSERT_GE(targets.size(), 4u);

  // Warm engine: starts on the train graph, caches stale extractions by
  // scoring before the ingest, then ingests the emerging triples.
  InferenceEngine warm(&model, dataset.original_graph(), EngineConfig{});
  (void)warm.ScoreBatch(ItemsFor(targets));  // populate cache pre-ingest
  IngestResponse response;
  warm.Ingest(dataset.emerging_triples(), &response);
  ASSERT_EQ(response.status, Status::kOk) << response.error;
  std::vector<double> after_ingest = warm.ScoreBatch(ItemsFor(targets));

  // Fresh engine: built directly on the equivalent static graph, empty
  // cache. If invalidation missed any stale entry the warm scores would
  // diverge from these.
  InferenceEngine fresh(&model, dataset.inference_graph(), EngineConfig{});
  std::vector<double> reference = fresh.ScoreBatch(ItemsFor(targets));

  ASSERT_EQ(after_ingest.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(after_ingest[i], reference[i]) << "triple " << i;
  }
}

TEST(LiveGraphTest, CacheCapacityIsEnforcedFifoWithIndexCleanup) {
  DekgDataset dataset = SyntheticDataset();
  core::DekgIlpModel model(SmallModelConfig(dataset.num_relations()),
                           /*seed=*/7);
  EngineConfig config;
  config.cache_capacity = 4;
  InferenceEngine engine(&model, dataset.inference_graph(), config);

  std::vector<Triple> targets;
  for (const LabeledLink& link : dataset.test_links()) {
    targets.push_back(link.triple);
    if (targets.size() >= 12) break;
  }
  ASSERT_GE(targets.size(), 8u);

  (void)engine.ScoreBatch(ItemsFor(targets));
  EngineStats stats = engine.Stats();
  EXPECT_LE(stats.cache_entries, 4u);
  EXPECT_EQ(stats.cache_evictions, targets.size() - 4);

  // Re-scoring the most recent 4 hits; everything older was evicted.
  std::vector<Triple> recent(targets.end() - 4, targets.end());
  std::vector<double> again = engine.ScoreBatch(ItemsFor(recent));
  EXPECT_EQ(again.size(), 4u);
  EXPECT_EQ(engine.Stats().cache_hits, 4u);
}

}  // namespace
}  // namespace dekg::serve
