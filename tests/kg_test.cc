#include "kg/knowledge_graph.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "kg/dataset.h"

namespace dekg {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  EntityId a = vocab.InternEntity("alice");
  EntityId b = vocab.InternEntity("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.InternEntity("alice"), a);
  EXPECT_EQ(vocab.num_entities(), 2);
  EXPECT_EQ(vocab.EntityName(a), "alice");
  EXPECT_EQ(vocab.FindEntity("carol"), -1);
}

TEST(VocabularyTest, EntityAndRelationNamespacesIndependent) {
  Vocabulary vocab;
  EntityId e = vocab.InternEntity("x");
  RelationId r = vocab.InternRelation("x");
  EXPECT_EQ(e, 0);
  EXPECT_EQ(r, 0);
  EXPECT_EQ(vocab.num_entities(), 1);
  EXPECT_EQ(vocab.num_relations(), 1);
}

KnowledgeGraph Chain() {
  // 0 -r0-> 1 -r1-> 2 -r0-> 3, plus a parallel 0 -r1-> 1.
  KnowledgeGraph g(4, 2);
  g.AddTriple({0, 0, 1});
  g.AddTriple({1, 1, 2});
  g.AddTriple({2, 0, 3});
  g.AddTriple({0, 1, 1});
  g.Build();
  return g;
}

TEST(KnowledgeGraphTest, CountsAndContains) {
  KnowledgeGraph g = Chain();
  EXPECT_EQ(g.num_triples(), 4);
  EXPECT_TRUE(g.Contains({0, 0, 1}));
  EXPECT_FALSE(g.Contains({1, 0, 0}));
  EXPECT_FALSE(g.Contains({0, 1, 2}));
}

TEST(KnowledgeGraphTest, IncidentEdgesBothDirections) {
  KnowledgeGraph g = Chain();
  // Node 1 touches edges (0,r0,1), (1,r1,2), (0,r1,1).
  EXPECT_EQ(g.Degree(1), 3);
  EXPECT_EQ(g.Degree(3), 1);
  bool found_incoming = false;
  for (int32_t eid : g.IncidentEdges(1)) {
    const Edge& e = g.edge(eid);
    EXPECT_TRUE(e.src == 1 || e.dst == 1);
    if (e.dst == 1) found_incoming = true;
  }
  EXPECT_TRUE(found_incoming);
}

TEST(KnowledgeGraphTest, RelationComponentTableCountsBothDirections) {
  KnowledgeGraph g = Chain();
  // Entity 1: incident rels r0 (incoming), r1 (outgoing), r1 (incoming).
  std::vector<int32_t> table = g.RelationComponentTable(1);
  EXPECT_EQ(table[0], 1);
  EXPECT_EQ(table[1], 2);
  // Isolated-ish entity 3: only r0 once.
  table = g.RelationComponentTable(3);
  EXPECT_EQ(table[0], 1);
  EXPECT_EQ(table[1], 0);
}

TEST(KnowledgeGraphTest, DuplicateTriplesKeptForMultiplicity) {
  KnowledgeGraph g(2, 1);
  g.AddTriple({0, 0, 1});
  g.AddTriple({0, 0, 1});
  g.Build();
  EXPECT_EQ(g.num_triples(), 2);
  EXPECT_EQ(g.RelationComponentTable(0)[0], 2);
}

TEST(KnowledgeGraphTest, SelfLoopCountedOnce) {
  KnowledgeGraph g(2, 1);
  g.AddTriple({0, 0, 0});
  g.Build();
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 0);
}

TEST(KnowledgeGraphTest, TriplesRoundTrip) {
  KnowledgeGraph g = Chain();
  std::vector<Triple> triples = g.Triples();
  EXPECT_EQ(triples.size(), 4u);
  EXPECT_EQ(triples[0], (Triple{0, 0, 1}));
}

TEST(KnowledgeGraphDeathTest, AddAfterBuildAborts) {
  KnowledgeGraph g(2, 1);
  g.Build();
  EXPECT_DEATH(g.AddTriple({0, 0, 1}), "AddTriple after Build");
}

TEST(KnowledgeGraphDeathTest, OutOfRangeIdsAbort) {
  KnowledgeGraph g(2, 1);
  EXPECT_DEATH(g.AddTriple({5, 0, 1}), "head");
  EXPECT_DEATH(g.AddTriple({0, 3, 1}), "rel");
}

TEST(TsvIoTest, SaveLoadRoundTrip) {
  Vocabulary vocab;
  std::vector<Triple> triples;
  triples.push_back({vocab.InternEntity("thunder"),
                     vocab.InternRelation("employ"),
                     vocab.InternEntity("russell")});
  triples.push_back({vocab.InternEntity("russell"),
                     vocab.InternRelation("teammate"),
                     vocab.InternEntity("kevin")});
  const std::string path =
      std::filesystem::temp_directory_path() / "dekg_kg_test.tsv";
  SaveTriplesTsv(path, triples, vocab);

  Vocabulary vocab2;
  std::vector<Triple> loaded = LoadTriplesTsv(path, &vocab2);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(vocab2.EntityName(loaded[0].head), "thunder");
  EXPECT_EQ(vocab2.RelationName(loaded[1].rel), "teammate");
  std::filesystem::remove(path);
}

TEST(DatasetTest, ClassifyAndInvariants) {
  // 3 original entities (0-2), 2 emerging (3-4), 2 relations.
  std::vector<Triple> train{{0, 0, 1}, {1, 1, 2}};
  std::vector<Triple> emerging{{3, 0, 4}};
  std::vector<LabeledLink> test{{{3, 1, 4}, LinkKind::kEnclosing},
                                {{0, 0, 3}, LinkKind::kBridging}};
  DekgDataset dataset("test", 3, 2, 2, train, emerging, {}, test);
  dataset.CheckInvariants();
  EXPECT_TRUE(dataset.IsOriginalEntity(2));
  EXPECT_TRUE(dataset.IsEmergingEntity(3));
  EXPECT_EQ(dataset.Classify({3, 0, 4}), LinkKind::kEnclosing);
  EXPECT_EQ(dataset.Classify({0, 0, 4}), LinkKind::kBridging);
  EXPECT_EQ(dataset.Classify({4, 0, 1}), LinkKind::kBridging);

  // Filter set covers train, emerging, and test.
  EXPECT_TRUE(dataset.filter_set().count({0, 0, 1}));
  EXPECT_TRUE(dataset.filter_set().count({3, 1, 4}));
  EXPECT_FALSE(dataset.filter_set().count({0, 1, 1}));

  // Inference graph has both sides; original graph only G edges.
  EXPECT_EQ(dataset.original_graph().num_triples(), 2);
  EXPECT_EQ(dataset.inference_graph().num_triples(), 3);
}

TEST(DatasetDeathTest, CrossCutTrainTripleAborts) {
  std::vector<Triple> bad_train{{0, 0, 3}};
  DekgDataset dataset("bad", 3, 2, 2, bad_train, {}, {}, {});
  EXPECT_DEATH(dataset.CheckInvariants(), "crosses the cut");
}

TEST(DatasetDeathTest, MislabeledLinkAborts) {
  std::vector<LabeledLink> bad_test{{{3, 0, 4}, LinkKind::kBridging}};
  DekgDataset dataset("bad", 3, 2, 2, {}, {}, {}, bad_test);
  EXPECT_DEATH(dataset.CheckInvariants(), "label mismatch");
}

}  // namespace
}  // namespace dekg
