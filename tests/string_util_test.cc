#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dekg {
namespace {

TEST(SplitTest, BasicFields) {
  auto fields = Split("a\tb\tc", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto fields = Split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, NoSeparator) {
  auto fields = Split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(SplitTest, EmptyInput) {
  auto fields = Split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(FormatFixed(0.5004, 3), "0.500");
  EXPECT_EQ(FormatFixed(1.0, 2), "1.00");
  EXPECT_EQ(FormatFixed(-0.1236, 3), "-0.124");  // rounds
}

}  // namespace
}  // namespace dekg
