#include "kg/dataset_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/synthetic_kg.h"

namespace dekg {
namespace {

std::string TempDir(const std::string& leaf) {
  auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(DatasetIoTest, DirFormatRoundTrip) {
  datagen::SchemaConfig schema;
  schema.num_types = 5;
  schema.num_relations = 12;
  schema.num_entities = 120;
  datagen::SplitConfig split;
  DekgDataset original =
      datagen::MakeDekgDataset("roundtrip", schema, split, 3);

  const std::string dir = TempDir("dekg_io_roundtrip");
  SaveDekgDatasetDir(original, dir);
  DekgDataset loaded = LoadDekgDatasetDir(dir, "roundtrip");

  EXPECT_EQ(loaded.num_original_entities(), original.num_original_entities());
  EXPECT_EQ(loaded.num_emerging_entities(), original.num_emerging_entities());
  EXPECT_EQ(loaded.num_relations(), original.num_relations());
  ASSERT_EQ(loaded.train_triples().size(), original.train_triples().size());
  for (size_t i = 0; i < loaded.train_triples().size(); ++i) {
    EXPECT_EQ(loaded.train_triples()[i], original.train_triples()[i]);
  }
  ASSERT_EQ(loaded.test_links().size(), original.test_links().size());
  for (size_t i = 0; i < loaded.test_links().size(); ++i) {
    EXPECT_EQ(loaded.test_links()[i].triple, original.test_links()[i].triple);
    EXPECT_EQ(loaded.test_links()[i].kind, original.test_links()[i].kind);
  }
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, NamedFormatClassifiesLinks) {
  const std::string dir = TempDir("dekg_io_named");
  std::filesystem::create_directories(dir);
  {
    std::ofstream train(dir + "/train.tsv");
    train << "a\tr1\tb\n"
          << "b\tr2\tc\n"
          << "c\tr1\ta\n";
    std::ofstream emerging(dir + "/emerging.tsv");
    emerging << "x\tr1\ty\n"
             << "y\tr2\tz\n";
    std::ofstream test(dir + "/test.tsv");
    test << "x\tr2\tz\n"    // enclosing: both unseen
         << "a\tr1\tx\n";   // bridging: a is original
  }
  Vocabulary vocab;
  DekgDataset dataset = LoadDekgDatasetNamed(
      dir + "/train.tsv", dir + "/emerging.tsv", "", dir + "/test.tsv",
      "named", &vocab);
  EXPECT_EQ(dataset.num_original_entities(), 3);
  EXPECT_EQ(dataset.num_emerging_entities(), 3);
  EXPECT_EQ(dataset.num_relations(), 2);
  ASSERT_EQ(dataset.test_links().size(), 2u);
  EXPECT_EQ(dataset.test_links()[0].kind, LinkKind::kEnclosing);
  EXPECT_EQ(dataset.test_links()[1].kind, LinkKind::kBridging);
  EXPECT_EQ(vocab.EntityName(dataset.test_links()[1].triple.head), "a");
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoDeathTest, NamedFormatRejectsUnseenEvalEntity) {
  const std::string dir = TempDir("dekg_io_bad");
  std::filesystem::create_directories(dir);
  {
    std::ofstream train(dir + "/train.tsv");
    train << "a\tr1\tb\n";
    std::ofstream emerging(dir + "/emerging.tsv");
    emerging << "x\tr1\ty\n";
    std::ofstream test(dir + "/test.tsv");
    test << "a\tr1\tghost\n";  // ghost appears nowhere else
  }
  EXPECT_DEATH(LoadDekgDatasetNamed(dir + "/train.tsv", dir + "/emerging.tsv",
                                    "", dir + "/test.tsv", "bad", nullptr),
               "unseen entity");
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoDeathTest, NamedFormatRejectsOriginalOnlyEvalLink) {
  const std::string dir = TempDir("dekg_io_bad2");
  std::filesystem::create_directories(dir);
  {
    std::ofstream train(dir + "/train.tsv");
    train << "a\tr1\tb\n";
    std::ofstream emerging(dir + "/emerging.tsv");
    emerging << "x\tr1\ty\n";
    std::ofstream test(dir + "/test.tsv");
    test << "a\tr1\tb\n";  // entirely inside G
  }
  EXPECT_DEATH(LoadDekgDatasetNamed(dir + "/train.tsv", dir + "/emerging.tsv",
                                    "", dir + "/test.tsv", "bad", nullptr),
               "inside the original KG");
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoDeathTest, MissingDirAborts) {
  EXPECT_DEATH(LoadDekgDatasetDir("/nonexistent/dekg", "x"), "meta.tsv");
}

}  // namespace
}  // namespace dekg
