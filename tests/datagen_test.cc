#include "datagen/synthetic_kg.h"

#include <set>

#include <gtest/gtest.h>

namespace dekg::datagen {
namespace {

SchemaConfig SmallSchema() {
  SchemaConfig schema;
  schema.num_types = 5;
  schema.num_relations = 15;
  schema.num_entities = 150;
  schema.avg_degree = 5.0;
  schema.num_rules = 6;
  return schema;
}

TEST(GenerateKgTest, BasicShape) {
  Rng rng(1);
  GeneratedKg kg = GenerateKg(SmallSchema(), &rng);
  EXPECT_EQ(kg.num_entities, 150);
  EXPECT_EQ(kg.num_relations, 15);
  EXPECT_GT(kg.triples.size(), 300u);
  EXPECT_EQ(kg.entity_types.size(), 150u);
  EXPECT_EQ(kg.relation_head_type.size(), 15u);
}

TEST(GenerateKgTest, AllTypesPopulated) {
  Rng rng(2);
  GeneratedKg kg = GenerateKg(SmallSchema(), &rng);
  std::set<int32_t> types(kg.entity_types.begin(), kg.entity_types.end());
  EXPECT_EQ(types.size(), 5u);
}

TEST(GenerateKgTest, TriplesInRangeNoSelfLoops) {
  Rng rng(3);
  GeneratedKg kg = GenerateKg(SmallSchema(), &rng);
  for (const Triple& t : kg.triples) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, kg.num_entities);
    EXPECT_GE(t.tail, 0);
    EXPECT_LT(t.tail, kg.num_entities);
    EXPECT_GE(t.rel, 0);
    EXPECT_LT(t.rel, kg.num_relations);
    EXPECT_NE(t.head, t.tail);
  }
}

TEST(GenerateKgTest, NoDuplicateTriples) {
  Rng rng(4);
  GeneratedKg kg = GenerateKg(SmallSchema(), &rng);
  TripleSet seen;
  for (const Triple& t : kg.triples) {
    EXPECT_TRUE(seen.insert(t).second) << "duplicate triple";
  }
}

TEST(GenerateKgTest, MostTriplesRespectTypeSignatures) {
  SchemaConfig schema = SmallSchema();
  schema.type_noise = 0.05;
  Rng rng(5);
  GeneratedKg kg = GenerateKg(schema, &rng);
  int64_t consistent = 0;
  for (const Triple& t : kg.triples) {
    const bool head_ok =
        kg.entity_types[static_cast<size_t>(t.head)] ==
        kg.relation_head_type[static_cast<size_t>(t.rel)];
    const bool tail_ok =
        kg.entity_types[static_cast<size_t>(t.tail)] ==
        kg.relation_tail_type[static_cast<size_t>(t.rel)];
    consistent += head_ok && tail_ok;
  }
  EXPECT_GT(static_cast<double>(consistent) /
                static_cast<double>(kg.triples.size()),
            0.8);
}

TEST(GenerateKgTest, RulesAreTypeCompatible) {
  Rng rng(6);
  GeneratedKg kg = GenerateKg(SmallSchema(), &rng);
  EXPECT_FALSE(kg.rules.empty());
  for (const Rule& rule : kg.rules) {
    // body1: A -> B, body2: B -> C, head: A -> C.
    EXPECT_EQ(kg.relation_tail_type[static_cast<size_t>(rule.body1)],
              kg.relation_head_type[static_cast<size_t>(rule.body2)]);
    EXPECT_EQ(kg.relation_head_type[static_cast<size_t>(rule.head)],
              kg.relation_head_type[static_cast<size_t>(rule.body1)]);
    EXPECT_EQ(kg.relation_tail_type[static_cast<size_t>(rule.head)],
              kg.relation_tail_type[static_cast<size_t>(rule.body2)]);
  }
}

TEST(GenerateKgTest, DeterministicForSeed) {
  Rng rng1(7), rng2(7);
  GeneratedKg a = GenerateKg(SmallSchema(), &rng1);
  GeneratedKg b = GenerateKg(SmallSchema(), &rng2);
  ASSERT_EQ(a.triples.size(), b.triples.size());
  for (size_t i = 0; i < a.triples.size(); ++i) {
    EXPECT_EQ(a.triples[i], b.triples[i]);
  }
}

TEST(GenerateKgTest, CommunityLocalityBiasesEndpoints) {
  SchemaConfig schema = SmallSchema();
  schema.community_locality = 0.9;
  std::vector<int32_t> community(150);
  for (size_t i = 0; i < community.size(); ++i) {
    community[i] = i % 2;
  }
  Rng rng(8);
  GeneratedKg kg = GenerateKg(schema, &rng, community);
  int64_t within = 0;
  for (const Triple& t : kg.triples) {
    within += community[static_cast<size_t>(t.head)] ==
              community[static_cast<size_t>(t.tail)];
  }
  const double fraction =
      static_cast<double>(within) / static_cast<double>(kg.triples.size());
  // Without bias ~50% of pairs share a community; with bias far more.
  EXPECT_GT(fraction, 0.75);
}

TEST(MakeDekgDatasetTest, StructureAndInvariants) {
  SplitConfig split;
  split.max_test_links = 50;
  DekgDataset dataset = MakeDekgDataset("t", SmallSchema(), split, 9);
  dataset.CheckInvariants();
  EXPECT_GT(dataset.num_original_entities(), 0);
  EXPECT_GT(dataset.num_emerging_entities(), 0);
  EXPECT_FALSE(dataset.train_triples().empty());
  EXPECT_FALSE(dataset.emerging_triples().empty());
  EXPECT_FALSE(dataset.test_links().empty());
  EXPECT_FALSE(dataset.valid_links().empty());
}

TEST(MakeDekgDatasetTest, EvalLinksHaveObservedStructure) {
  SplitConfig split;
  DekgDataset dataset = MakeDekgDataset("t", SmallSchema(), split, 10);
  const KnowledgeGraph& g = dataset.inference_graph();
  for (const LabeledLink& link : dataset.test_links()) {
    if (dataset.IsEmergingEntity(link.triple.head)) {
      EXPECT_GT(g.Degree(link.triple.head), 0);
    }
    if (dataset.IsEmergingEntity(link.triple.tail)) {
      EXPECT_GT(g.Degree(link.triple.tail), 0);
    }
  }
}

TEST(MakeDekgDatasetTest, MixRatiosApproximatelyRespected) {
  auto ratio = [](const DekgDataset& d) {
    double enc = 0, bri = 0;
    for (const LabeledLink& l : d.test_links()) {
      (l.kind == LinkKind::kEnclosing ? enc : bri) += 1;
    }
    for (const LabeledLink& l : d.valid_links()) {
      (l.kind == LinkKind::kEnclosing ? enc : bri) += 1;
    }
    return enc / std::max(bri, 1.0);
  };
  SchemaConfig schema = SmallSchema();
  schema.num_entities = 400;  // enough links for stable ratios
  SplitConfig eq;
  eq.enclosing_to_bridging = 1.0;
  SplitConfig mb;
  mb.enclosing_to_bridging = 0.5;
  SplitConfig me;
  me.enclosing_to_bridging = 2.0;
  EXPECT_NEAR(ratio(MakeDekgDataset("eq", schema, eq, 11)), 1.0, 0.25);
  EXPECT_NEAR(ratio(MakeDekgDataset("mb", schema, mb, 11)), 0.5, 0.15);
  EXPECT_NEAR(ratio(MakeDekgDataset("me", schema, me, 11)), 2.0, 0.5);
}

TEST(MakeDekgDatasetTest, MaxTestLinksCap) {
  SplitConfig split;
  split.max_test_links = 20;
  SchemaConfig schema = SmallSchema();
  schema.num_entities = 400;
  DekgDataset dataset = MakeDekgDataset("t", schema, split, 12);
  EXPECT_LE(dataset.test_links().size(), 22u);  // rounding slack
}

TEST(BenchmarkPresetsTest, FamiliesDifferInRelationCount) {
  SchemaConfig fb = FamilySchema(KgFamily::kFbLike, EvalSplit::kEq, 1.0);
  SchemaConfig nell = FamilySchema(KgFamily::kNellLike, EvalSplit::kEq, 1.0);
  SchemaConfig wn = FamilySchema(KgFamily::kWnLike, EvalSplit::kEq, 1.0);
  // FB-like has the most relations, WN-like the fewest (Table II).
  EXPECT_GT(fb.num_relations, nell.num_relations);
  EXPECT_GT(nell.num_relations, wn.num_relations);
  EXPECT_EQ(wn.num_relations, 9);
}

TEST(BenchmarkPresetsTest, SplitsGrowInScale) {
  SchemaConfig eq = FamilySchema(KgFamily::kFbLike, EvalSplit::kEq, 1.0);
  SchemaConfig mb = FamilySchema(KgFamily::kFbLike, EvalSplit::kMb, 1.0);
  SchemaConfig me = FamilySchema(KgFamily::kFbLike, EvalSplit::kMe, 1.0);
  EXPECT_LT(eq.num_entities, mb.num_entities);
  EXPECT_LT(mb.num_entities, me.num_entities);
}

TEST(BenchmarkPresetsTest, MakeBenchmarkDatasetRuns) {
  DekgDataset d =
      MakeBenchmarkDataset(KgFamily::kWnLike, EvalSplit::kEq, 0.4, 13);
  d.CheckInvariants();
  EXPECT_EQ(d.name(), "WN18RR EQ");
  EXPECT_GT(d.test_links().size(), 10u);
}

}  // namespace
}  // namespace dekg::datagen
