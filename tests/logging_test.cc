#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/timer.h"

namespace dekg {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  DEKG_CHECK(1 + 1 == 2) << "never evaluated";
  DEKG_CHECK_EQ(3, 3);
  DEKG_CHECK_NE(3, 4);
  DEKG_CHECK_LT(1, 2);
  DEKG_CHECK_LE(2, 2);
  DEKG_CHECK_GT(2, 1);
  DEKG_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(DEKG_CHECK(false) << "context 42", "Check failed: false.*context 42");
}

TEST(CheckDeathTest, ComparisonsPrintOperands) {
  int a = 3, b = 7;
  EXPECT_DEATH(DEKG_CHECK_EQ(a, b), "3 vs 7");
  EXPECT_DEATH(DEKG_CHECK_GT(a, b), "3 vs 7");
}

TEST(CheckDeathTest, FatalMacroAborts) {
  EXPECT_DEATH(DEKG_FATAL() << "boom", "boom");
}

TEST(SeverityTest, ThresholdSuppressesInfo) {
  LogSeverity old_severity = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  ::testing::internal::CaptureStderr();
  DEKG_INFO() << "hidden info";
  DEKG_WARN() << "hidden warning";
  std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  SetMinLogSeverity(old_severity);
}

TEST(SeverityTest, InfoEmittedAtDefault) {
  LogSeverity old_severity = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kInfo);
  ::testing::internal::CaptureStderr();
  DEKG_INFO() << "visible message";
  std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("visible message"), std::string::npos);
  EXPECT_NE(output.find("INFO"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  SetMinLogSeverity(old_severity);
}

TEST(CheckTest, StreamedArgumentsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  DEKG_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0) << "check message evaluated on the happy path";
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Busy-wait a tiny amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
  double first = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), first + 1.0);
}

}  // namespace
}  // namespace dekg
