// Parameterized autograd invariants: gradient linearity, chain-rule
// composition, and accumulation semantics across tensor sizes.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace dekg::ag {
namespace {

class AutogradProperty : public ::testing::TestWithParam<int64_t> {
 protected:
  int64_t n() const { return GetParam(); }
  Tensor Random(uint64_t seed) const {
    Rng rng(seed);
    return Tensor::Uniform({n()}, -1.5f, 1.5f, &rng);
  }
};

TEST_P(AutogradProperty, GradientOfSumIsOnes) {
  Var x = Var::Leaf(Random(1), true);
  SumAll(x).Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Ones({n()}), 0.0f));
}

TEST_P(AutogradProperty, GradientIsLinearInUpstream) {
  // d(c * f) = c * df for scalar c.
  Tensor input = Random(2);
  auto grad_of = [&](float scale) {
    Var x = Var::Leaf(input.Clone(), true);
    Var loss = MulScalar(SumAll(Square(x)), scale);
    loss.Backward();
    return x.grad().Clone();
  };
  Tensor g1 = grad_of(1.0f);
  Tensor g3 = grad_of(3.0f);
  g1.ScaleInPlace(3.0f);
  EXPECT_TRUE(AllClose(g1, g3, 1e-4f));
}

TEST_P(AutogradProperty, SumRuleForIndependentTerms) {
  // d(f + g)/dx = df/dx + dg/dx.
  Tensor input = Random(3);
  Var x = Var::Leaf(input.Clone(), true);
  Var combined = Add(SumAll(Square(x)), SumAll(Sin(x)));
  combined.Backward();
  Tensor got = x.grad().Clone();

  Var x1 = Var::Leaf(input.Clone(), true);
  SumAll(Square(x1)).Backward();
  Var x2 = Var::Leaf(input.Clone(), true);
  SumAll(Sin(x2)).Backward();
  Tensor expected = x1.grad().Clone();
  expected.AddInPlace(x2.grad());
  EXPECT_TRUE(AllClose(got, expected, 1e-5f));
}

TEST_P(AutogradProperty, ChainThroughReusedIntermediate) {
  // y = sigmoid(x); loss = sum(y * y + y). Numerically check at a few
  // coordinates: d/dx = (2y + 1) * y(1-y).
  Tensor input = Random(4);
  Var x = Var::Leaf(input.Clone(), true);
  Var y = Sigmoid(x);
  Var loss = SumAll(Add(Mul(y, y), y));
  loss.Backward();
  for (int64_t i = 0; i < n(); ++i) {
    const float xv = input.Data()[i];
    const float yv = 1.0f / (1.0f + std::exp(-xv));
    const float expected = (2.0f * yv + 1.0f) * yv * (1.0f - yv);
    EXPECT_NEAR(x.grad().Data()[i], expected, 1e-4f);
  }
}

TEST_P(AutogradProperty, BackwardTwiceAccumulates) {
  // Running two independent backward passes into the same leaf adds up.
  Var x = Var::Leaf(Random(5), true);
  SumAll(x).Backward();
  Tensor after_one = x.grad().Clone();
  SumAll(x).Backward();
  Tensor doubled = after_one.Clone();
  doubled.AddInPlace(after_one);
  EXPECT_TRUE(AllClose(x.grad(), doubled, 1e-6f));
}

TEST_P(AutogradProperty, DetachedConstantBlocksGradient) {
  Var x = Var::Leaf(Random(6), true);
  Var frozen = Var::Constant(x.value().Clone());
  Var loss = SumAll(Mul(frozen, frozen));
  EXPECT_FALSE(loss.requires_grad());
}

TEST_P(AutogradProperty, GatherScatterInverseGradients) {
  // loss = sum(Gather(x, idx)) puts exactly the visit count into each row
  // gradient.
  Rng rng(7);
  const int64_t rows = n();
  Tensor value = Tensor::Uniform({rows, 3}, -1, 1, &rng);
  std::vector<int64_t> indices;
  std::vector<int> visits(static_cast<size_t>(rows), 0);
  for (int64_t i = 0; i < rows * 2; ++i) {
    int64_t idx = static_cast<int64_t>(
        rng.UniformUint64(static_cast<uint64_t>(rows)));
    indices.push_back(idx);
    ++visits[static_cast<size_t>(idx)];
  }
  Var x = Var::Leaf(value, true);
  SumAll(GatherRows(x, indices)).Backward();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(x.grad().At(r, c),
                      static_cast<float>(visits[static_cast<size_t>(r)]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AutogradProperty,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace dekg::ag
