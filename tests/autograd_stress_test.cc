// Stress tests for the autograd engine: very deep chains (iterative
// topological sort, no recursion), wide fan-out graphs, and tape reuse.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace dekg::ag {
namespace {

TEST(AutogradStressTest, VeryDeepChainBackward) {
  // 5000 chained ops: a recursive traversal would overflow the stack.
  Var x = Var::Leaf(Tensor::Scalar(1.0f), true);
  Var y = x;
  for (int i = 0; i < 5000; ++i) {
    y = AddScalar(y, 0.001f);
  }
  Var loss = SumAll(y);
  loss.Backward();
  EXPECT_NEAR(loss.value().Data()[0], 6.0f, 1e-2f);
  EXPECT_NEAR(x.grad().Data()[0], 1.0f, 1e-5f);
}

TEST(AutogradStressTest, WideFanOutAccumulation) {
  // One leaf feeding 500 branches: gradient accumulates 500 contributions.
  Var x = Var::Leaf(Tensor::Scalar(2.0f), true);
  Var total;
  for (int i = 0; i < 500; ++i) {
    Var branch = MulScalar(x, 1.0f);
    total = total.defined() ? Add(total, branch) : branch;
  }
  total.Backward();
  EXPECT_NEAR(x.grad().Data()[0], 500.0f, 1e-2f);
}

TEST(AutogradStressTest, DiamondDependenciesCountedOnce) {
  // x -> a, b -> c where c uses both: classic diamond. d(c)/dx must be
  // computed after both paths' contributions arrive (topological order).
  Var x = Var::Leaf(Tensor::Scalar(3.0f), true);
  Var a = Square(x);        // x^2, da/dx = 2x = 6
  Var b = MulScalar(x, 4);  // 4x, db/dx = 4
  Var c = Mul(a, b);        // 4x^3, dc/dx = 12 x^2 = 108
  c.Backward();
  EXPECT_NEAR(x.grad().Data()[0], 108.0f, 1e-3f);
}

TEST(AutogradStressTest, RepeatedBackwardOnIndependentTapes) {
  // Build-and-discard 200 tapes; memory is owned by shared_ptr chains, so
  // nothing leaks or double-frees (run under ASAN to verify fully).
  Var x = Var::Leaf(Tensor::Scalar(1.5f), true);
  for (int i = 0; i < 200; ++i) {
    x.ZeroGrad();
    Var loss = SumAll(Square(Sigmoid(x)));
    loss.Backward();
    EXPECT_TRUE(x.has_grad());
  }
}

TEST(AutogradStressTest, LargeTensorChainMatchesClosedForm) {
  Rng rng(1);
  Tensor init = Tensor::Uniform({64, 64}, -0.5f, 0.5f, &rng);
  Var w = Var::Leaf(init, true);
  // loss = sum((w + w)^2) = 4 sum(w^2); d/dw = 8w.
  Var loss = SumAll(Square(Add(w, w)));
  loss.Backward();
  Tensor expected = init.Clone();
  expected.ScaleInPlace(8.0f);
  EXPECT_TRUE(AllClose(w.grad(), expected, 1e-3f));
}

}  // namespace
}  // namespace dekg::ag
