#!/bin/sh
# Single-entry CI gate, in increasing order of cost:
#
#   1. tier-1 build + ctest          (the correctness floor)
#   2. bench smoke                   (Release build; training determinism
#                                     and cache contracts, via bench_train)
#   3. sanitizer sweeps              (TSan + ASan/UBSan on the parallel and
#                                     checkpoint subsystems)
#
# Usage: scripts/ci.sh [fast]
#   fast: skip the sanitizer sweeps (they rebuild two extra trees).
set -e
cd "$(dirname "$0")/.."
MODE="${1:-full}"

echo "== ci: tier-1 build + tests =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== ci: bench smoke =="
scripts/bench_smoke.sh

if [ "$MODE" != "fast" ]; then
  echo "== ci: sanitizers =="
  scripts/sanitize_check.sh all
fi

echo "CI ($MODE) passed."
