#!/bin/sh
# Single-entry CI gate, in increasing order of cost:
#
#   1. tier-1 build + ctest          (the correctness floor)
#   2. vectorization check           (the SIMD kernels still auto-vectorize;
#                                     a scalar regression fails no test)
#   3. serve smoke                   (server binaries over real TCP: online
#                                     scores bit-for-bit vs offline golden,
#                                     before and after live ingestion, on
#                                     one engine and on a 3-shard router
#                                     with a pipelined client)
#   4. bench smoke                   (Release build; training determinism
#                                     and cache contracts, via bench_train,
#                                     the SIMD kernel bitwise gates via
#                                     bench_simd, the churn-maintenance
#                                     patch-vs-invalidate bitwise gates via
#                                     bench_churn, and the sharded-serving
#                                     sweep's offline-oracle gates via
#                                     bench_shard)
#   5. sanitizer sweeps              (TSan + ASan/UBSan on the parallel,
#                                     checkpoint, and serving subsystems,
#                                     plus the O0-vs-O3 kernel fingerprint
#                                     diff)
#
# Usage: scripts/ci.sh [fast]
#   fast: skip the sanitizer sweeps (they rebuild two extra trees).
set -e
cd "$(dirname "$0")/.."
MODE="${1:-full}"

echo "== ci: tier-1 build + tests =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== ci: vectorization check =="
scripts/vectorization_check.sh

echo "== ci: serve smoke =="
scripts/serve_smoke.sh build

echo "== ci: bench smoke =="
scripts/bench_smoke.sh

if [ "$MODE" != "fast" ]; then
  echo "== ci: sanitizers =="
  scripts/sanitize_check.sh all
fi

echo "CI ($MODE) passed."
