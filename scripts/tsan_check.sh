#!/bin/sh
# Back-compat wrapper: the ThreadSanitizer gate now lives in
# scripts/sanitize_check.sh, which additionally runs an address,undefined
# sweep. This entry point keeps `scripts/tsan_check.sh` invocations
# working and runs the thread sweep only.
set -e
exec "$(dirname "$0")/sanitize_check.sh" thread
