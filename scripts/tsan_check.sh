#!/bin/sh
# ThreadSanitizer gate for the parallel subsystem: builds the thread-pool,
# evaluator, and determinism tests with -DDEKG_SANITIZE=thread and runs
# them. Any data race in the pool, the parallel ranking loop, batched GSM
# scoring, or the parallel tensor kernels fails this script.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DDEKG_SANITIZE=thread
cmake --build "$BUILD_DIR" -j \
  --target thread_pool_test parallel_eval_determinism_test evaluator_test \
           tensor_test

for t in thread_pool_test parallel_eval_determinism_test evaluator_test \
         tensor_test; do
  echo "== TSan: $t =="
  # Force real concurrency so races are reachable even where the default
  # pool would size itself to 1 on small machines.
  DEKG_NUM_THREADS=4 "$BUILD_DIR/tests/$t"
done
echo "TSan check passed."
