#!/bin/sh
# Auto-vectorization gate for the SIMD kernel layer (DESIGN.md §12). The
# lane kernels are deliberately plain fixed-width loops with no ISA
# intrinsics; the compiler is trusted to vectorize them. That trust is
# cheap to lose silently — one refactor that introduces an aliasing hazard
# or a non-countable loop and a kernel quietly drops back to scalar with
# no test failing. This script compiles each hot translation unit with
# -fopt-info-vec and fails if the number of vectorized loops falls below a
# floor recorded when the kernels were written (floors sit below the
# measured counts so minor compiler-version wobble does not trip them).
#
# optimizer.cc is checked with -fvect-cost-model=dynamic, matching the
# per-source property in src/nn/CMakeLists.txt (the -O2 default
# "very-cheap" model refuses the fused span pass's epilogue loops).
#
# Usage: scripts/vectorization_check.sh
set -e
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
BASE_FLAGS="-std=c++20 -O2 -ffp-contract=off -fno-math-errno -Isrc"

check_file() {
  FILE="$1"
  MIN="$2"
  EXTRA="$3"
  # shellcheck disable=SC2086
  COUNT=$("$CXX" $BASE_FLAGS $EXTRA -c "$FILE" -o /dev/null \
            -fopt-info-vec 2>&1 | grep -c "loop vectorized" || true)
  echo "$FILE: $COUNT vectorized loops (floor $MIN)"
  if [ "$COUNT" -lt "$MIN" ]; then
    echo "FAIL: $FILE vectorizes $COUNT loops, expected at least $MIN." >&2
    echo "A kernel likely regressed to scalar; diff -fopt-info-vec-missed" >&2
    echo "output against the floors in scripts/vectorization_check.sh." >&2
    exit 1
  fi
}

# Measured on g++ 12: 12 / 5 / 11. Floors leave headroom for compiler
# wobble but catch any kernel-sized regression.
check_file src/tensor/tensor.cc 8 ""
check_file src/gnn/message_kernels.cc 4 ""
check_file src/nn/optimizer.cc 7 "-fvect-cost-model=dynamic"

echo "Vectorization check passed."
