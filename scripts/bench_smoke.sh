#!/bin/sh
# Fast benchmark smoke gate: a Release build of bench_train on a tiny
# synthetic dataset. bench_train exits nonzero when any of its hard
# contracts fail — parallel training not bitwise identical to serial,
# cached losses diverging from uncached, the sparse optimizer diverging
# from dense, or the subgraph-cache hit rate dropping below 99% after
# epoch 1 — so this script doubles as a determinism check, not just a
# does-it-run probe. Wall-clock numbers are printed but never gated.
#
# Usage: scripts/bench_smoke.sh
# Build tree: build-release/ (gitignored). Scale/threads can be tuned via
# DEKG_BENCH_SCALE / DEKG_BENCH_THREADS; the defaults keep this under a
# couple of minutes on one core.
set -e
cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j --target bench_train bench_gsm_batch bench_simd \
  bench_extract bench_churn bench_shard bench_quant

# Small dataset, explicit thread count: the point is the bitwise
# serial-vs-parallel comparison, not throughput.
cd build-release/bench
DEKG_BENCH_SCALE="${DEKG_BENCH_SCALE:-0.25}" \
DEKG_BENCH_THREADS="${DEKG_BENCH_THREADS:-4}" \
  ./bench_train

# Packed-batch GSM scoring: every (bucket policy, batch size, threads)
# point is gated on bitwise identity with sequential scoring; speedups
# are reported, not gated.
DEKG_BENCH_SCALE="${DEKG_BENCH_SCALE:-0.25}" \
DEKG_BENCH_THREADS="${DEKG_BENCH_THREADS:-4}" \
  ./bench_gsm_batch

# SIMD kernel sweep: every micro-kernel point is gated on bitwise identity
# with the historical scalar kernel (or the fixed-lane contract reference
# for the n == 1 dot column), and both end-to-end points on thread-count
# invariance; speedups are reported, not gated.
DEKG_BENCH_SCALE="${DEKG_BENCH_SCALE:-0.25}" \
DEKG_BENCH_THREADS="${DEKG_BENCH_THREADS:-4}" \
  ./bench_simd

# Extraction scaling sweep (entities x hops): every point is gated on the
# sparse output-sensitive path being bitwise identical to the dense
# reference, plus hard gates on >=5x per-extraction speedup at 1e5+
# entities / 2 hops and on sublinear growth in num_entities at fixed
# subgraph size. The smoke run trims the sweep to 1e5 entities to stay
# fast; the full 1e6 point runs when DEKG_BENCH_EXTRACT_MAX_N is raised.
DEKG_BENCH_EXTRACT_MAX_N="${DEKG_BENCH_EXTRACT_MAX_N:-100000}" \
  ./bench_extract

# DEKG-churn serving sweep: patch-mode and invalidate-mode engines step
# identical ingest+score schedules; every score round is gated on bitwise
# identity between the two and against the static-graph oracle. Latency
# percentiles and hit/patch/fallback rates are reported, not gated.
DEKG_BENCH_SCALE="${DEKG_BENCH_SCALE:-0.25}" \
DEKG_BENCH_THREADS="${DEKG_BENCH_THREADS:-4}" \
DEKG_BENCH_CHURN_ROUNDS="${DEKG_BENCH_CHURN_ROUNDS:-48}" \
  ./bench_churn

# Sharded-serving sweep over real TCP: shard count x pipeline depth x
# ingest churn, every point gated on the whole workload being bit-identical
# to the offline predictor (pre- and post-churn oracles). Closed-loop
# throughput and the speedup over 1-shard ping-pong are reported, not
# gated here.
DEKG_BENCH_SCALE="${DEKG_BENCH_SCALE:-0.25}" \
DEKG_BENCH_THREADS="${DEKG_BENCH_THREADS:-4}" \
DEKG_BENCH_SHARD_ITERS="${DEKG_BENCH_SHARD_ITERS:-512}" \
  ./bench_shard

# Quantized-serving sweep: one engine per storage precision. Hard gates
# (exit 1): the fp32 engine bit-identical to the offline predictor, int8
# cutting the frozen-model footprint >= 3x, every mode run-to-run
# bit-deterministic. Accuracy deltas and throughput are reported, not
# gated (the rank-metric epsilon gate is tests/quant_gate_test.cc).
DEKG_BENCH_SCALE="${DEKG_BENCH_SCALE:-0.25}" \
DEKG_BENCH_THREADS="${DEKG_BENCH_THREADS:-4}" \
  ./bench_quant
echo "Bench smoke passed (BENCH_train.json, BENCH_gsm_batch.json, BENCH_simd.json, BENCH_extract.json, BENCH_churn.json, BENCH_shard.json, BENCH_quant.json in build-release/bench/)."
