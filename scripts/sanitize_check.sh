#!/bin/sh
# Sanitizer gate for the parallel and checkpoint subsystems. Two sweeps:
#
#   thread            (-DDEKG_SANITIZE=thread)            data races in the
#                     thread pool, parallel evaluator, tensor kernels, the
#                     checkpoint format/resume paths, and the serving stack
#                     (connection threads + scheduler + engine)
#   address,undefined (-DDEKG_SANITIZE=address,undefined) memory and UB bugs
#                     in the same set plus the fork-heavy dataset-I/O fuzz
#                     and checkpoint death tests (fork/abort tests are kept
#                     out of the TSan sweep, which does not support them
#                     reliably)
#
# Usage: scripts/sanitize_check.sh [thread|asan|all]   (default: all)
# Build trees: build-tsan/ and build-asan-ubsan/ (both gitignored).
set -e
cd "$(dirname "$0")/.."
MODE="${1:-all}"

# Tests built and run under every sanitizer.
COMMON_TESTS="thread_pool_test parallel_eval_determinism_test evaluator_test \
  tensor_test checkpoint_format_test checkpoint_resume_test \
  trainer_parallel_determinism_test subgraph_cache_test \
  serve_protocol_test live_graph_test serve_determinism_test \
  gsm_batch_test"
# Death-test / fork-based suites: address,undefined sweep only.
FORKY_TESTS="checkpoint_test dataset_io_fuzz_test"

run_suite() {
  BUILD_DIR="$1"
  SANITIZERS="$2"
  TESTS="$3"
  cmake -B "$BUILD_DIR" -S . -DDEKG_SANITIZE="$SANITIZERS"
  # shellcheck disable=SC2086
  cmake --build "$BUILD_DIR" -j --target $TESTS
  for t in $TESTS; do
    echo "== $SANITIZERS: $t =="
    # Force real concurrency so races are reachable even where the default
    # pool would size itself to 1 on small machines.
    DEKG_NUM_THREADS=4 "$BUILD_DIR/tests/$t"
  done
}

if [ "$MODE" = "thread" ] || [ "$MODE" = "all" ]; then
  run_suite build-tsan thread "$COMMON_TESTS"
fi
if [ "$MODE" = "asan" ] || [ "$MODE" = "all" ]; then
  run_suite build-asan-ubsan address,undefined "$COMMON_TESTS $FORKY_TESTS"
fi
echo "Sanitize check ($MODE) passed."
