#!/bin/sh
# Sanitizer gate for the parallel and checkpoint subsystems. Two sweeps:
#
#   thread            (-DDEKG_SANITIZE=thread)            data races in the
#                     thread pool, parallel evaluator, tensor kernels, the
#                     checkpoint format/resume paths, and the serving stack
#                     (connection threads + scheduler + engine)
#   address,undefined (-DDEKG_SANITIZE=address,undefined) memory and UB bugs
#                     in the same set plus the fork-heavy dataset-I/O fuzz
#                     and checkpoint death tests (fork/abort tests are kept
#                     out of the TSan sweep, which does not support them
#                     reliably)
#   optlevels         (no sanitizer) the fixed-lane determinism contract
#                     across optimization levels: simd_kernel_contract_test
#                     is built at -O0 and -O3 and the kernel fingerprints
#                     the two binaries emit must match bit for bit — the
#                     hand-written lane loops, not the optimizer, define
#                     the arithmetic order (DESIGN.md §12)
#
# Usage: scripts/sanitize_check.sh [thread|asan|optlevels|all]  (default: all)
# Build trees: build-tsan/, build-asan-ubsan/, build-o0/, build-o3/ (all
# gitignored).
set -e
cd "$(dirname "$0")/.."
MODE="${1:-all}"

# Tests built and run under every sanitizer.
COMMON_TESTS="thread_pool_test parallel_eval_determinism_test evaluator_test \
  tensor_test checkpoint_format_test checkpoint_resume_test \
  trainer_parallel_determinism_test subgraph_cache_test \
  serve_protocol_test live_graph_test serve_determinism_test \
  shard_routing_test cache_patch_differential_test \
  subgraph_sparse_property_test \
  gsm_batch_test simd_kernel_contract_test quant_test quant_gate_test"
# Death-test / fork-based suites: address,undefined sweep only.
FORKY_TESTS="checkpoint_test dataset_io_fuzz_test"

run_suite() {
  BUILD_DIR="$1"
  SANITIZERS="$2"
  TESTS="$3"
  cmake -B "$BUILD_DIR" -S . -DDEKG_SANITIZE="$SANITIZERS"
  # shellcheck disable=SC2086
  cmake --build "$BUILD_DIR" -j --target $TESTS
  for t in $TESTS; do
    echo "== $SANITIZERS: $t =="
    # Force real concurrency so races are reachable even where the default
    # pool would size itself to 1 on small machines.
    DEKG_NUM_THREADS=4 "$BUILD_DIR/tests/$t"
  done
}

if [ "$MODE" = "thread" ] || [ "$MODE" = "all" ]; then
  run_suite build-tsan thread "$COMMON_TESTS"
fi
if [ "$MODE" = "asan" ] || [ "$MODE" = "all" ]; then
  run_suite build-asan-ubsan address,undefined "$COMMON_TESTS $FORKY_TESTS"
fi

if [ "$MODE" = "optlevels" ] || [ "$MODE" = "all" ]; then
  for LEVEL in O0 O3; do
    BUILD_DIR="build-$(echo "$LEVEL" | tr 'A-Z' 'a-z')"
    cmake -B "$BUILD_DIR" -S . -DDEKG_OPT_LEVEL="-$LEVEL"
    cmake --build "$BUILD_DIR" -j --target simd_kernel_contract_test
    echo "== -$LEVEL: simd_kernel_contract_test =="
    DEKG_KERNEL_FINGERPRINT="$BUILD_DIR/kernel_fingerprint.txt" \
      "$BUILD_DIR/tests/simd_kernel_contract_test"
  done
  echo "== -O0 vs -O3 kernel fingerprint =="
  cat build-o0/kernel_fingerprint.txt build-o3/kernel_fingerprint.txt
  if ! cmp -s build-o0/kernel_fingerprint.txt build-o3/kernel_fingerprint.txt
  then
    echo "FAIL: kernel fingerprints differ between -O0 and -O3; the" >&2
    echo "fixed-lane contract no longer pins the arithmetic order" >&2
    echo "(check for FMA contraction or a reassociating flag)." >&2
    exit 1
  fi
fi
echo "Sanitize check ($MODE) passed."
