#!/bin/sh
# End-to-end smoke test of the online scoring server (DESIGN.md §9),
# exercising the real binaries over a real TCP socket:
#
#   1. generate a small synthetic dataset and train a 2-epoch checkpoint
#   2. print the offline golden scores (dekg_serve --print-golden)
#   3. serve the full graph on an ephemeral port; client scores must match
#      the golden file BIT FOR BIT (diff on %.17g text)
#   4. serve the train graph only (--no-emerging), stream the emerging
#      triples through ingest-emerging, and require the post-ingest scores
#      to also match the golden file bit for bit — the live-ingestion
#      convergence contract
#   5. the sharded variant of stage 4: 3 shard engines (--shards 3) and a
#      pipelined client (--pipeline 4), pre-ingest scores differing from
#      the golden and post-ingest scores matching it bit for bit — the
#      consistent-hash fan-in and connection pipelining change nothing
#
# Usage: scripts/serve_smoke.sh [build_dir]   (default: build)
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

DATA="$WORK/data"
CKPT="$WORK/model.ckpt"
LINKS=20

echo "== serve smoke: dataset + checkpoint =="
"$BUILD/examples/dekg_cli" generate "$DATA" --scale 0.3 --seed 7
"$BUILD/examples/dekg_cli" train "$DATA" "$CKPT" --epochs 2 --dim 16

echo "== serve smoke: offline golden scores =="
"$BUILD/tools/dekg_serve" "$DATA" "$CKPT" --dim 16 \
  --print-golden "$LINKS" > "$WORK/golden.txt"

wait_port_file() {
  i=0
  while [ ! -s "$1" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "server did not write $1" >&2; exit 1; }
    sleep 0.1
  done
}

echo "== serve smoke: full-graph server, bitwise vs offline =="
"$BUILD/tools/dekg_serve" "$DATA" "$CKPT" --dim 16 \
  --port-file "$WORK/port1" &
SERVER_PID=$!
wait_port_file "$WORK/port1"
PORT="$(cat "$WORK/port1")"
"$BUILD/tools/dekg_serve_client" "$PORT" score "$DATA" --links "$LINKS" \
  > "$WORK/online.txt"
diff "$WORK/golden.txt" "$WORK/online.txt"
echo "bitwise match (full graph)"
"$BUILD/tools/dekg_serve_client" "$PORT" shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "== serve smoke: --no-emerging server + live ingestion =="
"$BUILD/tools/dekg_serve" "$DATA" "$CKPT" --dim 16 --no-emerging \
  --port-file "$WORK/port2" &
SERVER_PID=$!
wait_port_file "$WORK/port2"
PORT="$(cat "$WORK/port2")"
# Pre-ingest scores come from the train-only graph: they are expected to
# differ from the golden file (the emerging structure is missing).
"$BUILD/tools/dekg_serve_client" "$PORT" score "$DATA" --links "$LINKS" \
  > "$WORK/pre_ingest.txt"
if diff -q "$WORK/golden.txt" "$WORK/pre_ingest.txt" > /dev/null; then
  echo "pre-ingest scores unexpectedly equal the full-graph golden" >&2
  exit 1
fi
"$BUILD/tools/dekg_serve_client" "$PORT" ingest-emerging "$DATA" --chunk 32
"$BUILD/tools/dekg_serve_client" "$PORT" score "$DATA" --links "$LINKS" \
  > "$WORK/post_ingest.txt"
diff "$WORK/golden.txt" "$WORK/post_ingest.txt"
echo "bitwise match (after live ingestion)"
"$BUILD/tools/dekg_serve_client" "$PORT" stats > /dev/null
"$BUILD/tools/dekg_serve_client" "$PORT" shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "== serve smoke: 3-shard server, pipelined client, live ingestion =="
"$BUILD/tools/dekg_serve" "$DATA" "$CKPT" --dim 16 --no-emerging --shards 3 \
  --port-file "$WORK/port3" &
SERVER_PID=$!
wait_port_file "$WORK/port3"
PORT="$(cat "$WORK/port3")"
"$BUILD/tools/dekg_serve_client" "$PORT" score "$DATA" --links "$LINKS" \
  --pipeline 4 > "$WORK/shard_pre_ingest.txt"
if diff -q "$WORK/golden.txt" "$WORK/shard_pre_ingest.txt" > /dev/null; then
  echo "sharded pre-ingest scores unexpectedly equal the golden" >&2
  exit 1
fi
"$BUILD/tools/dekg_serve_client" "$PORT" ingest-emerging "$DATA" --chunk 32
"$BUILD/tools/dekg_serve_client" "$PORT" score "$DATA" --links "$LINKS" \
  --pipeline 4 > "$WORK/shard_post_ingest.txt"
diff "$WORK/golden.txt" "$WORK/shard_post_ingest.txt"
echo "bitwise match (3 shards, pipeline depth 4, after live ingestion)"
"$BUILD/tools/dekg_serve_client" "$PORT" stats > /dev/null
"$BUILD/tools/dekg_serve_client" "$PORT" shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "Serve smoke passed."
