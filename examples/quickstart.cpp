// Quickstart: the smallest end-to-end use of the library.
//
//  1. Synthesize a disconnected-emerging-KG dataset.
//  2. Train DEKG-ILP (CLRM + GSM) on the original KG.
//  3. Evaluate on the held-out enclosing + bridging links.
//  4. Score one bridging link by hand.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"

int main() {
  using namespace dekg;

  // 1. A small DEKG benchmark: original KG G for training, disconnected
  //    emerging KG G' plus labeled evaluation links for testing.
  datagen::SchemaConfig schema;
  schema.num_types = 8;
  schema.num_relations = 24;
  schema.num_entities = 300;
  datagen::SplitConfig split;
  split.max_test_links = 80;
  DekgDataset dataset =
      datagen::MakeDekgDataset("quickstart", schema, split, /*seed=*/7);
  std::printf("dataset: %d original + %d emerging entities, %zu train / %zu "
              "emerging triples, %zu test links\n",
              dataset.num_original_entities(), dataset.num_emerging_entities(),
              dataset.train_triples().size(), dataset.emerging_triples().size(),
              dataset.test_links().size());

  // 2. Configure and train the model (paper defaults: d=32, beta=0.5,
  //    sigma=0.1, lr=0.01).
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  core::DekgIlpModel model(config, /*seed=*/1);

  core::TrainConfig train;
  train.epochs = 8;
  train.max_triples_per_epoch = 250;
  train.verbose = true;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  trainer.Train();

  // 3. Ranking evaluation with the shared protocol.
  core::DekgIlpPredictor predictor(&model);
  EvalConfig eval;
  eval.max_links = 40;
  EvalResult result = Evaluate(&predictor, dataset, eval);
  std::printf("\noverall    MRR %.3f  Hits@10 %.3f\n", result.overall.mrr,
              result.overall.hits_at_10);
  std::printf("enclosing  MRR %.3f  Hits@10 %.3f\n", result.enclosing.mrr,
              result.enclosing.hits_at_10);
  std::printf("bridging   MRR %.3f  Hits@10 %.3f\n", result.bridging.mrr,
              result.bridging.hits_at_10);

  // 4. Score one bridging link directly: phi = phi_sem + phi_tpo (Eq. 13).
  for (const LabeledLink& link : dataset.test_links()) {
    if (link.kind != LinkKind::kBridging) continue;
    Rng rng(3);
    ag::Var score = model.ScoreLink(dataset.inference_graph(), link.triple,
                                    /*training=*/false, &rng);
    std::printf("\nbridging link (%d, r%d, %d) scores %.3f\n",
                link.triple.head, link.triple.rel, link.triple.tail,
                score.value().Data()[0]);
    break;
  }
  return 0;
}
