// Drug-interaction discovery — the paper's pharmacology motivation ("the
// drug-drug interaction that helps develop new medicine, e.g. the
// discovery of Artemisinin").
//
// Scenario: the original KG holds approved compounds, their protein
// targets, pathways, and known interactions. A lab publishes a
// *disconnected* emerging KG of novel compounds (assays only among the new
// compounds and their own targets). The model predicts bridging
// interaction links between novel and approved compounds — candidates for
// repurposing screens.
//
// The synthetic generator plays the role of the curated pharma KG: entity
// types act as {compound, target, pathway, disease, ...} classes and
// relation signatures as the biomedical schema. We then interpret one
// relation as "interacts_with" and rank bridging candidates for it.
#include <algorithm>
#include <cstdio>

#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"

int main() {
  using namespace dekg;

  // A biomedically-shaped schema: moderate relation vocabulary, strong
  // type structure (compounds bind targets, targets sit in pathways, ...).
  datagen::SchemaConfig schema;
  schema.num_types = 6;       // compound, target, pathway, disease, ...
  schema.num_relations = 18;  // binds, inhibits, interacts_with, treats, ...
  schema.num_entities = 320;
  schema.avg_degree = 6.0;
  schema.num_rules = 10;  // e.g. binds(x,t) ∧ binds(y,t) -> interacts(x,y)
  datagen::SplitConfig split;
  split.emerging_fraction = 0.3;  // the new compound library
  split.max_test_links = 100;
  DekgDataset dataset =
      datagen::MakeDekgDataset("pharma", schema, split, /*seed=*/21);

  std::printf("pharma KG: %d approved-world entities, %d novel entities, "
              "%zu curated facts\n",
              dataset.num_original_entities(), dataset.num_emerging_entities(),
              dataset.train_triples().size());

  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  core::DekgIlpModel model(config, /*seed=*/22);
  core::TrainConfig train;
  train.epochs = 8;
  train.max_triples_per_epoch = 250;
  train.seed = 23;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  trainer.Train();

  // Screening run: take the held-out *bridging* interactions as the
  // blinded ground truth and measure how highly the model ranks each true
  // interaction against 49 decoy pairings.
  core::DekgIlpPredictor predictor(&model);
  EvalConfig eval;
  eval.max_links = 30;
  EvalResult result = Evaluate(&predictor, dataset, eval);
  std::printf("\nblinded screen over held-out cross-library interactions:\n");
  std::printf("  bridging  MRR %.3f  Hits@10 %.3f (%lld ranking tasks)\n",
              result.bridging.mrr, result.bridging.hits_at_10,
              static_cast<long long>(result.bridging.num_tasks));

  // Candidate generation: for each of several novel compounds, rank every
  // approved-world entity as its partner and record where the confirmed
  // partner lands — the full exhaustive screen, not a sampled one.
  struct ProbeResult {
    Triple triple;
    size_t rank;
    size_t pool;
  };
  std::vector<ProbeResult> probes;
  Rng rng(24);
  for (const LabeledLink& link : dataset.test_links()) {
    if (probes.size() >= 10) break;
    if (link.kind != LinkKind::kBridging ||
        !dataset.IsEmergingEntity(link.triple.head)) {
      continue;
    }
    const EntityId novel = link.triple.head;
    const RelationId rel = link.triple.rel;
    const double true_score =
        model
            .ScoreLink(dataset.inference_graph(),
                       {novel, rel, link.triple.tail}, false, &rng)
            .value()
            .Data()[0];
    size_t rank = 1;
    size_t pool = 0;
    for (EntityId e = 0; e < dataset.num_original_entities(); ++e) {
      Triple candidate{novel, rel, e};
      if (e == link.triple.tail ||
          dataset.filter_set().count(candidate) > 0) {
        continue;
      }
      ++pool;
      ag::Var s =
          model.ScoreLink(dataset.inference_graph(), candidate, false, &rng);
      if (s.value().Data()[0] > true_score) ++rank;
    }
    probes.push_back({link.triple, rank, pool + 1});
  }
  if (!probes.empty()) {
    std::vector<size_t> ranks;
    for (const ProbeResult& p : probes) ranks.push_back(p.rank);
    std::sort(ranks.begin(), ranks.end());
    std::printf("\nexhaustive screens over %zu novel compounds "
                "(every approved-world entity as candidate):\n",
                probes.size());
    for (const ProbeResult& p : probes) {
      std::printf("  compound #%-4d relation r%-3d true partner #%-4d "
                  "ranked %zu / %zu\n",
                  p.triple.head, p.triple.rel, p.triple.tail, p.rank, p.pool);
    }
    std::printf("median rank of the confirmed partner: %zu\n",
                ranks[ranks.size() / 2]);
  }
  return 0;
}
