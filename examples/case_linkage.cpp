// Criminal-case linkage — the paper's own motivating incident: "a
// neglected connection between the case and another seemingly unrelated
// one that happened several years ago brought a significant breakthrough".
//
// The original KG is the archive of closed investigations (cases, suspects,
// locations, vehicles, methods). A *new* case file arrives as a
// disconnected emerging KG: its entities are all unseen and nothing links
// it to the archive. The analyst's question — "which archived entity does
// this new case connect to?" — is exactly bridging-link prediction.
//
// This example also contrasts DEKG-ILP against the GraIL baseline on the
// same queries to show why subgraph-only reasoning cannot answer them.
#include <algorithm>
#include <cstdio>

#include "baselines/grail.h"
#include "core/dekg_ilp.h"
#include "core/explain.h"
#include "core/trainer.h"
#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"

int main() {
  using namespace dekg;

  // Investigation-archive schema: few entity classes, rich relation set
  // (suspect_of, seen_at, uses_vehicle, same_method, called, ...).
  datagen::SchemaConfig schema;
  schema.num_types = 7;
  schema.num_relations = 21;
  schema.num_entities = 300;
  schema.avg_degree = 5.5;
  schema.num_rules = 8;  // e.g. seen_at(x,l) ∧ seen_at(y,l) -> met(x,y)
  datagen::SplitConfig split;
  split.emerging_fraction = 0.25;  // the new case file
  split.max_test_links = 80;
  DekgDataset dataset =
      datagen::MakeDekgDataset("case-archive", schema, split, /*seed=*/31);
  std::printf("archive: %d entities; new case file: %d unseen entities, "
              "%zu internal facts\n",
              dataset.num_original_entities(), dataset.num_emerging_entities(),
              dataset.emerging_triples().size());

  // Train DEKG-ILP and the GraIL baseline on the same archive.
  core::DekgIlpConfig ilp_config;
  ilp_config.num_relations = dataset.num_relations();
  core::DekgIlpModel dekg_ilp(ilp_config, /*seed=*/32);
  core::DekgIlpModel grail(
      baselines::GrailConfig(dataset.num_relations()), /*seed=*/32);

  core::TrainConfig train;
  train.epochs = 8;
  train.max_triples_per_epoch = 250;
  train.seed = 33;
  core::DekgIlpTrainer(&dekg_ilp, &dataset, train).Train();
  core::DekgIlpTrainer(&grail, &dataset, train).Train();

  // Evaluate both on the bridging links only: connections between the new
  // case and the archive that investigators later confirmed.
  EvalConfig eval;
  eval.max_links = 30;
  core::DekgIlpPredictor ilp_pred(&dekg_ilp);
  core::DekgIlpPredictor grail_pred(&grail);
  EvalResult ilp_result = Evaluate(&ilp_pred, dataset, eval);
  EvalResult grail_result = Evaluate(&grail_pred, dataset, eval);

  std::printf("\ncross-case connection retrieval (bridging links):\n");
  std::printf("  %-10s MRR %.3f  Hits@10 %.3f\n", "DEKG-ILP",
              ilp_result.bridging.mrr, ilp_result.bridging.hits_at_10);
  std::printf("  %-10s MRR %.3f  Hits@10 %.3f\n", "Grail",
              grail_result.bridging.mrr, grail_result.bridging.hits_at_10);
  std::printf("\nwithin-case link completion (enclosing links):\n");
  std::printf("  %-10s MRR %.3f  Hits@10 %.3f\n", "DEKG-ILP",
              ilp_result.enclosing.mrr, ilp_result.enclosing.hits_at_10);
  std::printf("  %-10s MRR %.3f  Hits@10 %.3f\n", "Grail",
              grail_result.enclosing.mrr, grail_result.enclosing.hits_at_10);

  if (ilp_result.bridging.mrr > grail_result.bridging.mrr) {
    std::printf("\nDEKG-ILP surfaces the cross-case connections that "
                "subgraph-only reasoning misses.\n");
  }

  // Evidence view: for the first confirmed cross-case connection, which of
  // the archived entity's relations drove the semantic score — the
  // analyst's "why do these cases connect" question, answered with the
  // exact per-relation decomposition of phi_sem.
  for (const LabeledLink& link : dataset.test_links()) {
    if (link.kind != LinkKind::kBridging) continue;
    const KnowledgeGraph& g = dataset.inference_graph();
    auto contributions = core::ExplainSemanticScore(
        *dekg_ilp.clrm(), g.RelationComponentTable(link.triple.head),
        link.triple.rel, g.RelationComponentTable(link.triple.tail),
        core::ExplainSide::kHead);
    std::printf("\nevidence for connection (%d, r%d, %d) — top relation "
                "contributions of entity #%d:\n",
                link.triple.head, link.triple.rel, link.triple.tail,
                link.triple.head);
    size_t shown = 0;
    for (const auto& c : contributions) {
      std::printf("  relation r%-3d contributes %+0.3f\n", c.relation,
                  c.contribution);
      if (++shown == 5) break;
    }
    break;
  }
  return 0;
}
