// The paper's Fig. 1 motivating example: an original NBA knowledge graph
// and a disconnected emerging KG of the 2008 draft class. The bridging
// link (Thunder, employ, Russell) does not exist in either graph — the
// model must infer it from the shared relation space.
//
// Entities are named through kg::Vocabulary, so the output reads like the
// paper's figure. The example shows how CLRM recognizes Russell as an
// "employee + sports player" purely from his relation-component table, and
// ranks candidate employers for him.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "kg/dataset.h"

namespace {

using namespace dekg;

struct NamedTriple {
  const char* head;
  const char* rel;
  const char* tail;
};

}  // namespace

int main() {
  Vocabulary vocab;

  // --- Original KG (Fig. 1a): veteran players and their teams, plus a few
  // replicas so the model sees each pattern more than once. ---
  const NamedTriple original[] = {
      // Teams employ players; players know their teammates and coaches.
      {"Lakers", "employ", "Kobe"},
      {"Kobe", "employed_by", "Lakers"},
      {"Kobe", "teammate", "Gasol"},
      {"Gasol", "teammate", "Kobe"},
      {"Gasol", "employed_by", "Lakers"},
      {"Lakers", "employ", "Gasol"},
      {"Lakers", "team_coach", "Phil"},
      {"Phil", "coach", "Kobe"},
      {"Phil", "coach", "Gasol"},
      {"Celtics", "employ", "Pierce"},
      {"Pierce", "employed_by", "Celtics"},
      {"Pierce", "teammate", "Garnett"},
      {"Garnett", "teammate", "Pierce"},
      {"Garnett", "employed_by", "Celtics"},
      {"Celtics", "employ", "Garnett"},
      {"Celtics", "team_coach", "Rivers"},
      {"Rivers", "coach", "Pierce"},
      {"Rivers", "coach", "Garnett"},
      {"Spurs", "employ", "Duncan"},
      {"Duncan", "employed_by", "Spurs"},
      {"Duncan", "teammate", "Parker"},
      {"Parker", "teammate", "Duncan"},
      {"Parker", "employed_by", "Spurs"},
      {"Spurs", "employ", "Parker"},
      {"Spurs", "team_coach", "Popovich"},
      {"Popovich", "coach", "Duncan"},
      {"Popovich", "coach", "Parker"},
      // Teams play against teams.
      {"Lakers", "play_against", "Celtics"},
      {"Celtics", "play_against", "Spurs"},
      {"Spurs", "play_against", "Lakers"},
      // The employer we want to connect to the draft class.
      {"Thunder", "team_coach", "Brooks"},
      {"Thunder", "play_against", "Lakers"},
      {"Thunder", "play_against", "Spurs"},
      {"Brooks", "coach", "Green"},
      {"Thunder", "employ", "Green"},
      {"Green", "employed_by", "Thunder"},
  };

  // --- Disconnected emerging KG (Fig. 1b): the 2008 draft class. No edge
  // touches the original KG. ---
  const NamedTriple emerging[] = {
      {"Russell", "teammate", "KevinLove"},
      {"KevinLove", "teammate", "Russell"},
      {"Russell", "employed_by", "UCLA_Bruins"},
      {"UCLA_Bruins", "employ", "Russell"},
      {"KevinLove", "employed_by", "UCLA_Bruins"},
      {"UCLA_Bruins", "employ", "KevinLove"},
      {"UCLA_Bruins", "team_coach", "Howland"},
      {"Howland", "coach", "Russell"},
      {"Howland", "coach", "KevinLove"},
      {"Rose", "teammate", "Russell"},
      {"Rose", "employed_by", "Memphis_Tigers"},
      {"Memphis_Tigers", "employ", "Rose"},
  };

  // Intern original entities first so ids [0, n_original) are G's.
  std::vector<Triple> original_triples;
  for (const NamedTriple& t : original) {
    original_triples.push_back({vocab.InternEntity(t.head),
                                vocab.InternRelation(t.rel),
                                vocab.InternEntity(t.tail)});
  }
  const int32_t n_original = vocab.num_entities();
  std::vector<Triple> emerging_triples;
  for (const NamedTriple& t : emerging) {
    emerging_triples.push_back({vocab.InternEntity(t.head),
                                vocab.InternRelation(t.rel),
                                vocab.InternEntity(t.tail)});
  }
  const int32_t n_emerging = vocab.num_entities() - n_original;

  DekgDataset dataset("nba-2008-draft", n_original, n_emerging,
                      vocab.num_relations(), original_triples,
                      emerging_triples, {}, {});
  dataset.CheckInvariants();

  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  config.num_contrastive_samples = 6;
  core::DekgIlpModel model(config, /*seed=*/11);
  core::TrainConfig train;
  train.epochs = 40;
  train.seed = 12;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  trainer.Train();

  // Rank every original entity as employer of Russell: the bridging-link
  // query (?, employ, Russell).
  const RelationId employ = vocab.FindRelation("employ");
  const EntityId russell = vocab.FindEntity("Russell");
  struct Candidate {
    EntityId id;
    double score;
  };
  std::vector<Candidate> candidates;
  Rng rng(13);
  for (EntityId e = 0; e < n_original; ++e) {
    ag::Var s = model.ScoreLink(dataset.inference_graph(),
                                {e, employ, russell}, false, &rng);
    candidates.push_back({e, static_cast<double>(s.value().Data()[0])});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  std::printf("Who should employ Russell? (bridging-link query across two "
              "disconnected KGs)\n");
  int shown = 0;
  for (const Candidate& c : candidates) {
    std::printf("  %-10s %8.3f\n", vocab.EntityName(c.id).c_str(), c.score);
    if (++shown == 8) break;
  }

  // Teams should dominate the ranking: CLRM recognizes "employer" from the
  // relation-component table even across the disconnect.
  const char* teams[] = {"Lakers", "Celtics", "Spurs", "Thunder"};
  int teams_in_top4 = 0;
  for (int i = 0; i < 4; ++i) {
    for (const char* team : teams) {
      if (vocab.EntityName(candidates[static_cast<size_t>(i)].id) == team) {
        ++teams_in_top4;
      }
    }
  }
  std::printf("\nteams in top-4: %d / 4\n", teams_in_top4);
  return 0;
}
