// Command-line driver: train DEKG-ILP on a dataset directory (or generate
// a synthetic one), evaluate, and save/load checkpoints — the workflow a
// downstream user runs on their own data.
//
// Usage:
//   dekg_cli generate <dir> [--scale S] [--family fb|nell|wn]
//                     [--split eq|mb|me] [--seed N]
//       Synthesize a benchmark dataset and write it as TSVs.
//
//   dekg_cli train <dir> <checkpoint> [--epochs N] [--dim D] [--seed N]
//       Train on <dir> (the id-based TSV directory format of
//       kg/dataset_io.h) with validation-based model selection, then save
//       the checkpoint.
//
//   dekg_cli eval <dir> <checkpoint> [--dim D] [--links N]
//       Load the checkpoint and report MRR / Hits@{1,5,10} overall and per
//       link kind.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"
#include "kg/dataset_io.h"

namespace {

using namespace dekg;

// Minimal flag scanner: --name value.
const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int Generate(int argc, char** argv) {
  const std::string dir = argv[2];
  const double scale = std::atof(FlagValue(argc, argv, "--scale", "0.5"));
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "7")));
  const std::string family_name = FlagValue(argc, argv, "--family", "fb");
  const std::string split_name = FlagValue(argc, argv, "--split", "eq");
  datagen::KgFamily family = datagen::KgFamily::kFbLike;
  if (family_name == "nell") family = datagen::KgFamily::kNellLike;
  if (family_name == "wn") family = datagen::KgFamily::kWnLike;
  datagen::EvalSplit split = datagen::EvalSplit::kEq;
  if (split_name == "mb") split = datagen::EvalSplit::kMb;
  if (split_name == "me") split = datagen::EvalSplit::kMe;
  DekgDataset dataset =
      datagen::MakeBenchmarkDataset(family, split, scale, seed);
  SaveDekgDatasetDir(dataset, dir);
  std::printf("wrote %s: %d+%d entities, %zu train / %zu emerging triples, "
              "%zu valid / %zu test links\n",
              dir.c_str(), dataset.num_original_entities(),
              dataset.num_emerging_entities(), dataset.train_triples().size(),
              dataset.emerging_triples().size(), dataset.valid_links().size(),
              dataset.test_links().size());
  return 0;
}

int Train(int argc, char** argv) {
  const std::string dir = argv[2];
  const std::string checkpoint = argv[3];
  DekgDataset dataset = LoadDekgDatasetDir(dir, "cli");
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = std::atoi(FlagValue(argc, argv, "--dim", "32"));
  core::DekgIlpModel model(
      config,
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "1"))));
  core::TrainConfig train;
  train.epochs = std::atoi(FlagValue(argc, argv, "--epochs", "10"));
  train.max_triples_per_epoch = 300;
  train.verbose = true;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  EvalConfig eval;
  eval.max_links = 30;
  const double best = trainer.TrainWithValidation(eval);
  if (!model.SaveCheckpoint(checkpoint)) {
    std::fprintf(stderr, "failed to write %s\n", checkpoint.c_str());
    return 1;
  }
  std::printf("best validation MRR %.3f; checkpoint saved to %s\n", best,
              checkpoint.c_str());
  return 0;
}

int Eval(int argc, char** argv) {
  const std::string dir = argv[2];
  const std::string checkpoint = argv[3];
  DekgDataset dataset = LoadDekgDatasetDir(dir, "cli");
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = std::atoi(FlagValue(argc, argv, "--dim", "32"));
  core::DekgIlpModel model(config, 1);
  if (!model.LoadCheckpoint(checkpoint)) {
    std::fprintf(stderr, "failed to read %s\n", checkpoint.c_str());
    return 1;
  }
  core::DekgIlpPredictor predictor(&model);
  EvalConfig eval;
  eval.max_links = std::atoi(FlagValue(argc, argv, "--links", "50"));
  EvalResult result = Evaluate(&predictor, dataset, eval);
  auto print = [](const char* label, const RankingMetrics& m) {
    std::printf("%-10s MRR %.3f  H@1 %.3f  H@5 %.3f  H@10 %.3f (%lld tasks)\n",
                label, m.mrr, m.hits_at_1, m.hits_at_5, m.hits_at_10,
                static_cast<long long>(m.num_tasks));
  };
  print("overall", result.overall);
  print("enclosing", result.enclosing);
  print("bridging", result.bridging);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "generate") == 0) {
    return Generate(argc, argv);
  }
  if (argc >= 4 && std::strcmp(argv[1], "train") == 0) {
    return Train(argc, argv);
  }
  if (argc >= 4 && std::strcmp(argv[1], "eval") == 0) {
    return Eval(argc, argv);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  dekg_cli generate <dir> [--scale S] [--family fb|nell|wn]"
               " [--split eq|mb|me] [--seed N]\n"
               "  dekg_cli train <dir> <checkpoint> [--epochs N] [--dim D]"
               " [--seed N]\n"
               "  dekg_cli eval <dir> <checkpoint> [--dim D] [--links N]\n");
  return 2;
}
