// Online-serving throughput/latency sweep (DESIGN.md §9): closed-loop
// clients against an in-process ScoringServer over real TCP, swept over
// micro-batch cap x thread count. Every configuration is gated on the
// subsystem's acceptance criterion — one full request scored online must
// be bit-identical to offline DekgIlpPredictor::ScoreTriples — before its
// throughput numbers count; a gate failure flips the exit code.
//
// Knobs: DEKG_BENCH_THREADS (parallel thread count, default max(4, hw)),
// DEKG_BENCH_SERVE_CLIENTS (closed-loop clients, default 4),
// DEKG_BENCH_SERVE_ITERS (requests per client per config, default 64).
// Results land in BENCH_serve.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

namespace dekg::bench {
namespace {

using serve::BatcherConfig;
using serve::Client;
using serve::MicroBatcher;
using serve::Router;
using serve::RouterConfig;
using serve::ScoreRequest;
using serve::ScoreResponse;
using serve::ScoringServer;
using serve::ServerConfig;
using serve::StatsResponse;
using serve::Status;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

struct SweepPoint {
  int threads = 1;
  int64_t max_batch_triples = 1;
  bool gate_identical = false;
  double seconds = 0.0;
  double triples_per_s = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t batches_scored = 0;
};

// One configuration: fresh engine/batcher/server, gate request, then a
// closed loop of `clients` threads each sending `iters` single-triple
// requests (cycling over the workload) — queue pressure is what lets the
// micro-batcher actually pack.
SweepPoint RunPoint(core::DekgIlpModel* model, const DekgDataset& dataset,
                    const std::vector<Triple>& triples,
                    const std::vector<double>& offline, int threads,
                    int64_t max_batch, int clients, int iters) {
  SweepPoint point;
  point.threads = threads;
  point.max_batch_triples = max_batch;

  SetDefaultThreadCount(threads);
  // Memo off: this sweep measures the batched scoring pipeline itself
  // (cache hit rate included), not hot-query replay.
  RouterConfig router_config;
  router_config.engine.score_memo_capacity = 0;
  Router router(model, dataset.inference_graph(), router_config);
  BatcherConfig batcher_config;
  batcher_config.max_batch_triples = max_batch;
  MicroBatcher batcher(&router, batcher_config);
  ScoringServer server(&batcher, ServerConfig{});  // ephemeral port
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    SetDefaultThreadCount(0);
    return point;
  }

  {
    // Gate: the whole workload in one request, default seed 123 — the
    // offline predictor's stream. Must match bit for bit.
    Client gate;
    ScoreResponse response;
    point.gate_identical =
        gate.Connect("127.0.0.1", server.port(), &error) &&
        [&] {
          ScoreRequest request;
          request.triples = triples;
          return gate.Score(request, &response, &error) &&
                 response.status == Status::kOk &&
                 response.scores == offline;
        }();

    if (point.gate_identical) {
      Timer timer;
      std::vector<std::thread> workers;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          Client client;
          std::string client_error;
          if (!client.Connect("127.0.0.1", server.port(), &client_error)) {
            return;
          }
          for (int i = 0; i < iters; ++i) {
            ScoreRequest request;
            request.triples = {
                triples[static_cast<size_t>(c * iters + i) % triples.size()]};
            ScoreResponse client_response;
            if (!client.Score(request, &client_response, &client_error)) break;
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      point.seconds = timer.ElapsedSeconds();
      const double total =
          static_cast<double>(clients) * static_cast<double>(iters);
      point.triples_per_s = point.seconds > 0.0 ? total / point.seconds : 0.0;

      StatsResponse stats;
      if (gate.Stats(&stats, &error)) {
        point.latency_p50_ms = stats.latency_p50_ms;
        point.latency_p99_ms = stats.latency_p99_ms;
        point.batches_scored = stats.batches_scored;
        const double lookups =
            static_cast<double>(stats.cache_hits + stats.cache_misses);
        point.cache_hit_rate =
            lookups > 0.0 ? static_cast<double>(stats.cache_hits) / lookups
                          : 0.0;
      }
    }
  }

  server.RequestStop();
  server.Wait();
  SetDefaultThreadCount(0);
  return point;
}

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int parallel_threads =
      std::max(4, EnvInt("DEKG_BENCH_THREADS",
                         static_cast<int>(std::thread::hardware_concurrency())));
  const int clients = EnvInt("DEKG_BENCH_SERVE_CLIENTS", 4);
  const int iters = EnvInt("DEKG_BENCH_SERVE_ITERS", 64);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  core::DekgIlpConfig model_config;
  model_config.num_relations = dataset.num_relations();
  model_config.dim = 16;
  core::DekgIlpModel model(model_config, /*seed=*/1);

  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    triples.push_back(link.triple);
    if (triples.size() >= 48) break;
  }
  core::DekgIlpPredictor predictor(&model);
  const std::vector<double> offline =
      predictor.ScoreTriples(dataset.inference_graph(), triples);

  std::printf(
      "bench_serve: %d-thread sweep, %d closed-loop clients x %d requests, "
      "%zu-triple workload\n",
      parallel_threads, clients, iters, triples.size());

  std::vector<SweepPoint> points;
  for (int threads : {1, parallel_threads}) {
    for (int64_t batch : {int64_t{1}, int64_t{16}, int64_t{64}}) {
      points.push_back(RunPoint(&model, dataset, triples, offline, threads,
                                batch, clients, iters));
    }
  }

  std::printf("\n%8s %6s %6s %12s %10s %10s %9s %9s\n", "threads", "batch",
              "gate", "triples/s", "p50(ms)", "p99(ms)", "hit-rate",
              "batches");
  for (const SweepPoint& p : points) {
    std::printf("%8d %6lld %6s %12.1f %10.3f %10.3f %8.1f%% %9llu\n",
                p.threads, static_cast<long long>(p.max_batch_triples),
                p.gate_identical ? "ok" : "FAIL", p.triples_per_s,
                p.latency_p50_ms, p.latency_p99_ms, p.cache_hit_rate * 100.0,
                static_cast<unsigned long long>(p.batches_scored));
  }

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"clients\": %d,\n  \"iters_per_client\": %d,\n"
               "  \"workload_triples\": %zu,\n  \"sweep\": [",
               clients, iters, triples.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(json,
                 "%s\n    {\n"
                 "      \"threads\": %d,\n"
                 "      \"max_batch_triples\": %lld,\n"
                 "      \"gate_identical\": %s,\n"
                 "      \"seconds\": %.6f,\n"
                 "      \"triples_per_s\": %.1f,\n"
                 "      \"latency_p50_ms\": %.3f,\n"
                 "      \"latency_p99_ms\": %.3f,\n"
                 "      \"cache_hit_rate\": %.4f,\n"
                 "      \"batches_scored\": %llu\n    }",
                 i == 0 ? "" : ",", p.threads,
                 static_cast<long long>(p.max_batch_triples),
                 p.gate_identical ? "true" : "false", p.seconds,
                 p.triples_per_s, p.latency_p50_ms, p.latency_p99_ms,
                 p.cache_hit_rate,
                 static_cast<unsigned long long>(p.batches_scored));
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_serve.json\n");

  // Throughput depends on the machine; only the bitwise gate is a hard
  // requirement.
  for (const SweepPoint& p : points) {
    if (!p.gate_identical) return 1;
  }
  return 0;
}
