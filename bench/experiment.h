// Shared experiment orchestration for the benchmark binaries: builds the
// benchmark datasets, trains every model of Table III, and evaluates them
// with the shared protocol. Each table/figure binary composes these pieces
// and prints its own rows.
//
// Scale knobs come from the environment so the same binaries serve both a
// quick sanity sweep and a longer, closer-to-paper run:
//   DEKG_BENCH_SCALE   dataset scale multiplier   (default 0.45)
//   DEKG_BENCH_EPOCHS  subgraph-model epochs      (default 8)
//   DEKG_BENCH_LINKS   evaluated test links       (default 45)
//   DEKG_BENCH_SEED    global seed                (default 7)
//   DEKG_BENCH_RUNS    seeds averaged per model   (default 1; paper uses 5)
#ifndef DEKG_BENCH_EXPERIMENT_H_
#define DEKG_BENCH_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "datagen/synthetic_kg.h"
#include "eval/evaluator.h"
#include "kg/dataset.h"

namespace dekg::bench {

struct ExperimentConfig {
  double scale = 0.45;
  int32_t subgraph_epochs = 8;
  int32_t subgraph_triples_per_epoch = 220;
  int32_t kge_epochs = 40;
  int32_t eval_links = 45;
  int32_t eval_negatives = 49;
  int32_t dim = 32;
  uint64_t seed = 7;
  // Independent repetitions averaged per model (the paper averages 5 runs
  // with different seeds); DEKG_BENCH_RUNS.
  int32_t runs = 1;

  static ExperimentConfig FromEnv();
};

// One trained + evaluated model.
struct ModelRun {
  std::string name;
  EvalResult result;
  int64_t parameter_count = 0;
  double train_seconds_per_epoch = 0.0;
  double infer_seconds_per_50_links = 0.0;
};

// The models of Table III, in the paper's row order.
enum class ModelKind {
  kTransE,
  kRotatE,
  kConvE,
  kGen,
  kRuleN,
  kGrail,
  kTact,
  kDekgIlp,
  // Extension baselines (Table I rows not in Table III).
  kNeuralLp,
  kMean,
  // Ablations (Fig. 6).
  kDekgIlpNoR,  // DEKG-ILP-R: no relation-specific features
  kDekgIlpNoC,  // DEKG-ILP-C: no contrastive loss
  kDekgIlpNoN,  // DEKG-ILP-N: original node labeling
  kClrmOnly,    // extension: GSM removed entirely (semantic score alone)
};

const char* ModelKindName(ModelKind kind);
std::vector<ModelKind> TableThreeModels();
std::vector<ModelKind> AblationModels();

// Trains `kind` on `dataset` and evaluates it. Timing fields are filled
// when `measure_time` is set (adds a timed inference pass over 50 links).
ModelRun RunModel(ModelKind kind, const DekgDataset& dataset,
                  const ExperimentConfig& config, bool measure_time = false);

// Dataset cache so multiple figures in one binary reuse generation work.
DekgDataset MakeDataset(datagen::KgFamily family, datagen::EvalSplit split,
                        const ExperimentConfig& config);

// ----- Table formatting helpers -----
// Prints "name  mrr  h@1  h@5  h@10" rows with fixed widths.
void PrintMetricsRow(const std::string& name, const RankingMetrics& metrics);
void PrintTableHeader(const std::string& title);

}  // namespace dekg::bench

#endif  // DEKG_BENCH_EXPERIMENT_H_
