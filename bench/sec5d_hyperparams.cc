// Sec. V-D (Parameter Setup) — the paper's hyperparameter grid: learning
// rate lr ∈ {0.1, 0.01, 0.001, 0.0005}, feature dimension d ∈ {16, 32, 64,
// 128}, edge dropout beta ∈ {0.1, 0.3, 0.5, 0.8}, contrastive weight
// sigma ∈ {0.01, 0.1, 0.5, 1}, selected on the validation set. The paper's
// optimum: lr = 0.01, d = 32, beta = 0.5, sigma = 0.1.
//
// A full 4^4 grid is 256 trainings; like the paper's own practice, this
// bench sweeps each axis around the default configuration (coordinate
// search) and reports validation MRR per setting.
#include <cstdio>

#include "bench/experiment.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"

namespace {

using namespace dekg;
using namespace dekg::bench;

double RunOnce(const DekgDataset& dataset, const ExperimentConfig& base,
               double lr, int32_t dim, float beta, double sigma) {
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = dim;
  config.edge_dropout = beta;
  config.sigma = sigma;
  config.num_contrastive_samples = 6;
  core::DekgIlpModel model(config, base.seed ^ 0xd1);
  core::TrainConfig train;
  train.epochs = base.subgraph_epochs;
  train.max_triples_per_epoch = base.subgraph_triples_per_epoch;
  train.lr = lr;
  train.seed = base.seed ^ 0xd2;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  EvalConfig eval;
  eval.num_entity_negatives = base.eval_negatives;
  eval.max_links = base.eval_links;
  eval.seed = base.seed ^ 0xd3;
  return trainer.TrainWithValidation(eval, /*eval_every=*/4);
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();
  config.eval_links = 30;  // validation sets are small

  std::printf("Sec. V-D: hyperparameter sensitivity (validation MRR, "
              "FB15k-237 EQ, coordinate sweep around lr=0.01 d=32 "
              "beta=0.5 sigma=0.1)\n");
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  std::printf("\n%-10s %12s\n", "lr", "valid MRR");
  for (double lr : {0.1, 0.01, 0.001, 0.0005}) {
    std::printf("%-10g %12.3f\n", lr,
                RunOnce(dataset, config, lr, 32, 0.5f, 0.1));
  }
  std::printf("\n%-10s %12s\n", "d", "valid MRR");
  for (int32_t d : {16, 32, 64, 128}) {
    std::printf("%-10d %12.3f\n", d,
                RunOnce(dataset, config, 0.01, d, 0.5f, 0.1));
  }
  std::printf("\n%-10s %12s\n", "beta", "valid MRR");
  for (float beta : {0.1f, 0.3f, 0.5f, 0.8f}) {
    std::printf("%-10g %12.3f\n", beta,
                RunOnce(dataset, config, 0.01, 32, beta, 0.1));
  }
  std::printf("\n%-10s %12s\n", "sigma", "valid MRR");
  for (double sigma : {0.01, 0.1, 0.5, 1.0}) {
    std::printf("%-10g %12.3f\n", sigma,
                RunOnce(dataset, config, 0.01, 32, 0.5f, sigma));
  }
  return 0;
}
