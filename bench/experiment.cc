#include "bench/experiment.h"

#include <cstdio>
#include <cstdlib>

#include "baselines/gen.h"
#include "baselines/grail.h"
#include "baselines/kge_models.h"
#include "baselines/mean.h"
#include "baselines/neural_lp.h"
#include "baselines/rulen.h"
#include "baselines/tact.h"
#include "baselines/graph_trainer.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"

namespace dekg::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

int32_t EnvInt(const char* name, int32_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  config.scale = EnvDouble("DEKG_BENCH_SCALE", config.scale);
  config.subgraph_epochs = EnvInt("DEKG_BENCH_EPOCHS", config.subgraph_epochs);
  config.eval_links = EnvInt("DEKG_BENCH_LINKS", config.eval_links);
  config.seed = static_cast<uint64_t>(EnvInt("DEKG_BENCH_SEED",
                                             static_cast<int32_t>(config.seed)));
  config.runs = EnvInt("DEKG_BENCH_RUNS", config.runs);
  return config;
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTransE: return "TransE";
    case ModelKind::kRotatE: return "RotatE";
    case ModelKind::kConvE: return "ConvE";
    case ModelKind::kGen: return "GEN";
    case ModelKind::kRuleN: return "RuleN";
    case ModelKind::kGrail: return "Grail";
    case ModelKind::kTact: return "TACT";
    case ModelKind::kNeuralLp: return "NeuralLP";
    case ModelKind::kMean: return "MEAN";
    case ModelKind::kDekgIlp: return "DEKG-ILP";
    case ModelKind::kDekgIlpNoR: return "DEKG-ILP-R";
    case ModelKind::kDekgIlpNoC: return "DEKG-ILP-C";
    case ModelKind::kDekgIlpNoN: return "DEKG-ILP-N";
    case ModelKind::kClrmOnly: return "CLRM-only";
  }
  return "?";
}

std::vector<ModelKind> TableThreeModels() {
  return {ModelKind::kTransE, ModelKind::kRotatE, ModelKind::kConvE,
          ModelKind::kGen,    ModelKind::kRuleN,  ModelKind::kGrail,
          ModelKind::kTact,   ModelKind::kDekgIlp};
}

std::vector<ModelKind> AblationModels() {
  return {ModelKind::kDekgIlpNoR, ModelKind::kDekgIlpNoC,
          ModelKind::kDekgIlpNoN, ModelKind::kClrmOnly, ModelKind::kDekgIlp};
}

DekgDataset MakeDataset(datagen::KgFamily family, datagen::EvalSplit split,
                        const ExperimentConfig& config) {
  return datagen::MakeBenchmarkDataset(family, split, config.scale,
                                       config.seed);
}

namespace {

// Builds the DEKG-ILP configuration for a full model or ablation variant.
core::DekgIlpConfig IlpConfig(ModelKind kind, const DekgDataset& dataset,
                              const ExperimentConfig& config) {
  core::DekgIlpConfig ilp;
  ilp.num_relations = dataset.num_relations();
  ilp.dim = config.dim;
  ilp.num_contrastive_samples = 6;
  switch (kind) {
    case ModelKind::kDekgIlp:
      break;
    case ModelKind::kDekgIlpNoR:
      ilp.use_clrm = false;
      break;
    case ModelKind::kDekgIlpNoC:
      ilp.use_contrastive = false;
      break;
    case ModelKind::kDekgIlpNoN:
      ilp.labeling = NodeLabeling::kGrail;
      break;
    case ModelKind::kClrmOnly:
      ilp.use_gsm = false;
      ilp.name_override = "CLRM-only";
      break;
    case ModelKind::kGrail: {
      core::DekgIlpConfig grail =
          baselines::GrailConfig(dataset.num_relations(), config.dim);
      return grail;
    }
    default:
      DEKG_FATAL() << "not a DEKG-ILP variant";
  }
  return ilp;
}

struct TimedEval {
  EvalResult result;
  double infer_seconds_per_50 = 0.0;
};

TimedEval EvaluateModel(LinkPredictor* predictor, const DekgDataset& dataset,
                        const ExperimentConfig& config, bool measure_time) {
  EvalConfig eval;
  eval.num_entity_negatives = config.eval_negatives;
  eval.max_links = config.eval_links;
  eval.seed = config.seed ^ 0x9999;
  TimedEval out;
  out.result = Evaluate(predictor, dataset, eval);
  if (measure_time) {
    // Average inference time for 50 links (Table IV / Fig. 7 protocol).
    std::vector<Triple> batch;
    const auto& links = dataset.test_links();
    DEKG_CHECK(!links.empty());
    for (int i = 0; i < 50; ++i) {
      batch.push_back(links[static_cast<size_t>(i) % links.size()].triple);
    }
    Timer timer;
    predictor->ScoreTriples(dataset.inference_graph(), batch);
    out.infer_seconds_per_50 = timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace

namespace {
// Sum-merges two finalized metric sets by averaging (equal weights).
void AverageInto(RankingMetrics* into, const RankingMetrics& from, int32_t n) {
  into->mrr += from.mrr / n;
  into->hits_at_1 += from.hits_at_1 / n;
  into->hits_at_5 += from.hits_at_5 / n;
  into->hits_at_10 += from.hits_at_10 / n;
  into->num_tasks += from.num_tasks;
}
}  // namespace

ModelRun RunModel(ModelKind kind, const DekgDataset& dataset,
                  const ExperimentConfig& config, bool measure_time) {
  if (config.runs > 1) {
    // Average metrics over independent seeds (paper protocol with 5 runs).
    ModelRun averaged;
    for (int32_t i = 0; i < config.runs; ++i) {
      ExperimentConfig single = config;
      single.runs = 1;
      single.seed = config.seed + static_cast<uint64_t>(i) * 1009;
      ModelRun run = RunModel(kind, dataset, single, measure_time && i == 0);
      averaged.name = run.name;
      averaged.parameter_count = run.parameter_count;
      averaged.train_seconds_per_epoch += run.train_seconds_per_epoch / config.runs;
      if (i == 0) averaged.infer_seconds_per_50_links = run.infer_seconds_per_50_links;
      AverageInto(&averaged.result.overall, run.result.overall, config.runs);
      AverageInto(&averaged.result.enclosing, run.result.enclosing, config.runs);
      AverageInto(&averaged.result.bridging, run.result.bridging, config.runs);
      AverageInto(&averaged.result.head_task, run.result.head_task, config.runs);
      AverageInto(&averaged.result.tail_task, run.result.tail_task, config.runs);
      AverageInto(&averaged.result.relation_task, run.result.relation_task,
                  config.runs);
    }
    return averaged;
  }
  ModelRun run;
  run.name = ModelKindName(kind);
  Timer train_timer;
  int32_t epochs_run = 1;

  switch (kind) {
    case ModelKind::kTransE:
    case ModelKind::kRotatE:
    case ModelKind::kConvE: {
      baselines::KgeConfig kge;
      kge.num_entities = dataset.num_total_entities();
      kge.num_relations = dataset.num_relations();
      kge.dim = config.dim;
      kge.seed = config.seed ^ 0x11;
      std::unique_ptr<baselines::KgeModel> model;
      if (kind == ModelKind::kTransE) {
        model = std::make_unique<baselines::TransE>(kge);
      } else if (kind == ModelKind::kRotatE) {
        model = std::make_unique<baselines::RotatE>(kge);
      } else {
        model = std::make_unique<baselines::ConvE>(kge);
      }
      baselines::KgeTrainConfig train;
      train.epochs = config.kge_epochs;
      train.seed = config.seed ^ 0x22;
      epochs_run = train.epochs;
      train_timer.Restart();
      baselines::TrainKgeModel(model.get(), dataset, train);
      run.train_seconds_per_epoch =
          train_timer.ElapsedSeconds() / epochs_run;
      run.parameter_count = model->ParameterCount();
      TimedEval eval = EvaluateModel(model.get(), dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      return run;
    }
    case ModelKind::kGen: {
      baselines::KgeConfig kge;
      kge.num_entities = dataset.num_total_entities();
      kge.num_relations = dataset.num_relations();
      kge.dim = config.dim;
      kge.seed = config.seed ^ 0x33;
      baselines::Gen model(kge);
      model.SetEmergingRange(dataset.num_original_entities(),
                             dataset.num_total_entities());
      baselines::KgeTrainConfig train;
      train.epochs = std::max(10, config.kge_epochs / 2);
      train.seed = config.seed ^ 0x44;
      epochs_run = train.epochs;
      train_timer.Restart();
      baselines::TrainGen(&model, dataset, train);
      run.train_seconds_per_epoch = train_timer.ElapsedSeconds() / epochs_run;
      run.parameter_count = model.ParameterCount();
      TimedEval eval = EvaluateModel(&model, dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      return run;
    }
    case ModelKind::kMean: {
      baselines::KgeConfig kge;
      kge.num_entities = dataset.num_total_entities();
      kge.num_relations = dataset.num_relations();
      kge.dim = config.dim;
      kge.seed = config.seed ^ 0x99;
      baselines::Mean model(kge);
      model.SetEmergingRange(dataset.num_original_entities(),
                             dataset.num_total_entities());
      baselines::KgeTrainConfig train;
      train.epochs = config.kge_epochs;
      train.seed = config.seed ^ 0x9a;
      epochs_run = train.epochs;
      train_timer.Restart();
      baselines::TrainKgeModel(&model, dataset, train);
      run.train_seconds_per_epoch = train_timer.ElapsedSeconds() / epochs_run;
      run.parameter_count = model.ParameterCount();
      TimedEval eval = EvaluateModel(&model, dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      return run;
    }
    case ModelKind::kNeuralLp: {
      baselines::NeuralLpConfig nlp;
      nlp.num_relations = dataset.num_relations();
      baselines::NeuralLp model(nlp, config.seed ^ 0x9b);
      baselines::GraphTrainConfig train;
      train.epochs = config.subgraph_epochs;
      train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
      train.lr = 0.1;  // attention logits train well with a larger step
      train.seed = config.seed ^ 0x9c;
      epochs_run = train.epochs;
      train_timer.Restart();
      baselines::TrainGraphModel(
          &model,
          [&model](const KnowledgeGraph& g, const Triple& t, bool,
                   Rng*) { return model.ScoreLink(g, t); },
          dataset, train);
      run.train_seconds_per_epoch = train_timer.ElapsedSeconds() / epochs_run;
      run.parameter_count = model.ParameterCount();
      TimedEval eval = EvaluateModel(&model, dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      return run;
    }
    case ModelKind::kRuleN: {
      baselines::RulenConfig rulen;
      baselines::RuleN model(rulen);
      train_timer.Restart();
      model.Mine(dataset);
      run.train_seconds_per_epoch = train_timer.ElapsedSeconds();
      run.parameter_count = model.ParameterCount();
      TimedEval eval = EvaluateModel(&model, dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      return run;
    }
    case ModelKind::kTact: {
      baselines::TactConfig tact;
      tact.num_relations = dataset.num_relations();
      tact.dim = config.dim;
      baselines::Tact model(tact, config.seed ^ 0x55);
      baselines::GraphTrainConfig train;
      train.epochs = config.subgraph_epochs;
      train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
      train.seed = config.seed ^ 0x66;
      epochs_run = train.epochs;
      train_timer.Restart();
      baselines::TrainGraphModel(
          &model,
          [&model](const KnowledgeGraph& g, const Triple& t, bool training,
                   Rng* rng) { return model.ScoreLink(g, t, training, rng); },
          dataset, train);
      run.train_seconds_per_epoch = train_timer.ElapsedSeconds() / epochs_run;
      run.parameter_count = model.ParameterCount();
      TimedEval eval = EvaluateModel(&model, dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      return run;
    }
    case ModelKind::kGrail:
    case ModelKind::kDekgIlp:
    case ModelKind::kDekgIlpNoR:
    case ModelKind::kDekgIlpNoC:
    case ModelKind::kDekgIlpNoN:
    case ModelKind::kClrmOnly: {
      core::DekgIlpModel model(IlpConfig(kind, dataset, config),
                               config.seed ^ 0x77);
      core::TrainConfig train;
      train.epochs = config.subgraph_epochs;
      train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
      train.seed = config.seed ^ 0x88;
      epochs_run = train.epochs;
      train_timer.Restart();
      core::DekgIlpTrainer trainer(&model, &dataset, train);
      trainer.Train();
      run.train_seconds_per_epoch = train_timer.ElapsedSeconds() / epochs_run;
      run.parameter_count = model.ParameterCount();
      core::DekgIlpPredictor predictor(&model);
      TimedEval eval =
          EvaluateModel(&predictor, dataset, config, measure_time);
      run.result = eval.result;
      run.infer_seconds_per_50_links = eval.infer_seconds_per_50;
      run.name = ModelKindName(kind);
      return run;
    }
  }
  DEKG_FATAL() << "unreachable";
  return run;
}

void PrintTableHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-14s %8s %8s %8s %8s\n", "Model", "MRR", "Hits@1", "Hits@5",
              "Hits@10");
}

void PrintMetricsRow(const std::string& name, const RankingMetrics& metrics) {
  std::printf("%-14s %8.3f %8.3f %8.3f %8.3f\n", name.c_str(), metrics.mrr,
              metrics.hits_at_1, metrics.hits_at_5, metrics.hits_at_10);
}

}  // namespace dekg::bench
