// Packed-batch GSM scoring throughput (DESIGN.md §11): batch-size x
// bucket-policy sweep over a cache-hit workload (subgraphs pre-extracted,
// as the evaluator and the serving engine see them), against the
// sequential per-subgraph forward. Every swept configuration is gated on
// bitwise identity with the sequential scores; wall-clock speedup is
// machine-dependent and reported only, so — like bench_parallel — only an
// identity failure flips the exit code.
//
// Results land in BENCH_gsm_batch.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/gsm.h"
#include "graph/subgraph.h"

namespace dekg::bench {
namespace {

int BenchThreads() {
  if (const char* env = std::getenv("DEKG_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw));
}

// Best-of-k wall time of fn(), in seconds.
template <typename F>
double TimeBest(int repetitions, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

const char* BucketName(core::GsmBatchOptions::Bucket bucket) {
  switch (bucket) {
    case core::GsmBatchOptions::Bucket::kNone:
      return "none";
    case core::GsmBatchOptions::Bucket::kBySize:
      return "by_size";
    case core::GsmBatchOptions::Bucket::kByPow2:
      return "by_pow2";
  }
  return "?";
}

struct SweepPoint {
  std::string bucket;
  int32_t max_batch = 0;
  int threads = 0;
  double seconds = 0.0;
  double speedup = 0.0;  // vs the sequential path at the same thread count
  bool identical = false;
};

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads = BenchThreads();
  std::printf("bench_gsm_batch: sweep threads {1, %d}\n", threads);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  core::GsmConfig gsm_config;
  gsm_config.num_relations = dataset.num_relations();
  gsm_config.dim = 32;
  Rng init(3);
  core::Gsm gsm(gsm_config, &init);

  // Cache-hit workload: the subgraphs are already extracted, exactly what
  // ScoreTriplesCached / the serve engine hand to the packed scorer.
  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    triples.push_back(link.triple);
    if (triples.size() >= 96) break;
  }
  const std::vector<Subgraph> subs =
      gsm.ExtractBatch(dataset.inference_graph(), triples);
  std::vector<const Subgraph*> sub_ptrs;
  std::vector<RelationId> rels;
  std::vector<int64_t> indices;
  for (size_t i = 0; i < subs.size(); ++i) {
    sub_ptrs.push_back(&subs[i]);
    rels.push_back(triples[i].rel);
    indices.push_back(static_cast<int64_t>(i));
  }
  const size_t n = subs.size();
  std::printf("workload: %zu pre-extracted subgraphs, dim %d\n", n,
              gsm_config.dim);

  // Sequential bitwise reference (thread-count independent).
  std::vector<float> reference(n);
  for (size_t i = 0; i < n; ++i) {
    Rng unused(0);
    reference[i] =
        gsm.ScoreSubgraph(subs[i], rels[i], /*training=*/false, &unused)
            .value()
            .Data()[0];
  }

  std::vector<SweepPoint> sweep;
  std::vector<double> sequential_s;
  std::vector<int> thread_settings = {1, threads};
  for (int t : thread_settings) {
    SetDefaultThreadCount(t);
    const double seq = TimeBest(3, [&] {
      for (size_t i = 0; i < n; ++i) {
        Rng unused(0);
        gsm.ScoreSubgraph(subs[i], rels[i], /*training=*/false, &unused);
      }
    });
    sequential_s.push_back(seq);

    for (auto bucket : {core::GsmBatchOptions::Bucket::kNone,
                        core::GsmBatchOptions::Bucket::kBySize,
                        core::GsmBatchOptions::Bucket::kByPow2}) {
      for (int32_t max_batch : {4, 16, 64}) {
        core::GsmBatchOptions options;
        options.bucket = bucket;
        options.max_batch = max_batch;
        std::vector<float> scores(n);
        const double secs = TimeBest(3, [&] {
          const auto groups = core::GroupForPacking(sub_ptrs, indices, options);
          for (const auto& group : groups) {
            std::vector<const Subgraph*> gs;
            std::vector<RelationId> gr;
            for (int64_t i : group) {
              gs.push_back(sub_ptrs[static_cast<size_t>(i)]);
              gr.push_back(rels[static_cast<size_t>(i)]);
            }
            const std::vector<float> out = gsm.ScoreSubgraphsPacked(gs, gr);
            for (size_t k = 0; k < group.size(); ++k) {
              scores[static_cast<size_t>(group[k])] = out[k];
            }
          }
        });
        SweepPoint point;
        point.bucket = BucketName(bucket);
        point.max_batch = max_batch;
        point.threads = t;
        point.seconds = secs;
        point.speedup = secs > 0.0 ? seq / secs : 0.0;
        point.identical = scores == reference;
        sweep.push_back(point);
      }
    }
  }
  SetDefaultThreadCount(0);

  std::printf("\n%-9s %10s %8s %12s %9s %10s\n", "bucket", "max_batch",
              "threads", "seconds", "speedup", "identical");
  for (size_t t = 0; t < thread_settings.size(); ++t) {
    std::printf("%-9s %10s %8d %12.6f %9s %10s\n", "(seq)", "1",
                thread_settings[t], sequential_s[t], "1.00x", "yes");
  }
  for (const SweepPoint& p : sweep) {
    std::printf("%-9s %10d %8d %12.6f %8.2fx %10s\n", p.bucket.c_str(),
                p.max_batch, p.threads, p.seconds, p.speedup,
                p.identical ? "yes" : "NO");
  }

  std::FILE* json = std::fopen("BENCH_gsm_batch.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_gsm_batch.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"num_subgraphs\": %zu,\n  \"dim\": %d,\n",
               n, gsm_config.dim);
  std::fprintf(json, "  \"sequential\": {");
  for (size_t t = 0; t < thread_settings.size(); ++t) {
    std::fprintf(json, "%s\n    \"threads_%d\": %.6f",
                 t == 0 ? "" : ",", thread_settings[t], sequential_s[t]);
  }
  std::fprintf(json, "\n  },\n  \"sweep\": [");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(json,
                 "%s\n    {\"bucket\": \"%s\", \"max_batch\": %d, "
                 "\"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup_vs_sequential\": %.3f, \"identical\": %s}",
                 i == 0 ? "" : ",", p.bucket.c_str(), p.max_batch, p.threads,
                 p.seconds, p.speedup, p.identical ? "true" : "false");
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_gsm_batch.json\n");

  // The bitwise gate is the hard requirement; speedup is reported only.
  for (const SweepPoint& p : sweep) {
    if (!p.identical) return 1;
  }
  return 0;
}
