// SIMD kernel throughput (DESIGN.md §12): the lane-vectorized tensor
// kernels, the fused RGCN message sweep, and the fused multi-tensor
// optimizer step, each timed against a bench-local copy of the historical
// scalar kernel it replaced, plus end-to-end packed score-batch and
// train-step timings across thread counts. Every point is gated on
// bitwise identity — order-preserving kernels against the historical
// loops, contract-changing kernels (the n == 1 MatMul dot column) against
// the fixed-lane reference, end-to-end runs across thread counts — and,
// as in bench_parallel / bench_gsm_batch, only an identity failure flips
// the exit code; speedups are machine-dependent and reported only.
//
// Results land in BENCH_simd.json in the working directory.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/gsm.h"
#include "gnn/message_kernels.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/lanes.h"
#include "tensor/tensor.h"
#include "tensor/tuning.h"

namespace dekg::bench {
namespace {

int BenchThreads() {
  if (const char* env = std::getenv("DEKG_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw));
}

// Best-of-k wall time of fn(), in seconds.
template <typename F>
double TimeBest(int repetitions, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::bit_cast<uint32_t>(a.Data()[i]) !=
        std::bit_cast<uint32_t>(b.Data()[i])) {
      return false;
    }
  }
  return true;
}

Tensor RandomTensor(Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), -1.0f, 1.0f, &rng);
}

// ----- Historical scalar kernels (pre-SIMD), kept verbatim as the
// speedup baselines and (where order-preserving) bitwise references -----

Tensor OldMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  Tensor out(Shape{m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.Data();
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* b_row = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Tensor OldMatMulSkipZero(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  Tensor out(Shape{m, n});
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* po = out.Data();
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* b_row = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

// Fixed-lane contract reference for the n == 1 dot column (the order the
// new MatMul path is *specified* to produce; the historical sequential
// kernel is timed as the baseline but is not the bitwise reference).
float ContractDot(const float* a, const float* c, int64_t n) {
  const int64_t lanes = tune::kLanes;
  const int64_t blocks = n / lanes;
  std::vector<float> acc(static_cast<size_t>(lanes), 0.0f);
  for (int64_t b = 0; b < blocks; ++b) {
    for (int64_t l = 0; l < lanes; ++l) {
      acc[static_cast<size_t>(l)] += a[b * lanes + l] * c[b * lanes + l];
    }
  }
  float total = acc[0];
  for (int64_t l = 1; l < lanes; ++l) total += acc[static_cast<size_t>(l)];
  for (int64_t i = blocks * lanes; i < n; ++i) total += a[i] * c[i];
  return total;
}

void OldSweep(const std::vector<int64_t>& src, const std::vector<int64_t>& dst,
              const std::vector<const float*>& pt,
              const std::vector<const float*>& pc, const float* pgate,
              int64_t dout, float* pagg) {
  const int64_t m = static_cast<int64_t>(src.size());
  const int64_t num_bases = static_cast<int64_t>(pt.size());
  for (int64_t e = 0; e < m; ++e) {
    const int64_t s = src[static_cast<size_t>(e)];
    const int64_t d = dst[static_cast<size_t>(e)];
    const float* t0 = pt[0] + s * dout;
    float* out_row = pagg + d * dout;
    const float ge = pgate != nullptr ? pgate[e] : 1.0f;
    for (int64_t j = 0; j < dout; ++j) {
      float v = t0[j] * pc[0][e];
      for (int64_t b = 1; b < num_bases; ++b) {
        v += pt[static_cast<size_t>(b)][s * dout + j] *
             pc[static_cast<size_t>(b)][e];
      }
      if (pgate != nullptr) v = v * ge;
      out_row[j] += v;
    }
  }
}

// Historical per-parameter dense Adam loop, applied to raw tensors. Kept
// verbatim — including the unconditional weight-decay term — so it is
// both the bitwise reference and a fair timing baseline.
void OldAdamDense(float* w, const float* g, float* m, float* v, int64_t n,
                  float b1, float b2, float eps, float wd, float lr_t) {
  for (int64_t j = 0; j < n; ++j) {
    const float gj = g[j] + wd * w[j];
    m[j] = b1 * m[j] + (1.0f - b1) * gj;
    v[j] = b2 * v[j] + (1.0f - b2) * gj * gj;
    w[j] -= lr_t * m[j] / (std::sqrt(v[j]) + eps);
  }
}

// Embedding-heavy module shaped like the KGE baselines (entity table +
// relation table + a dense head), for the fused optimizer bench.
class OptimBenchModule : public nn::Module {
 public:
  explicit OptimBenchModule(uint64_t seed) {
    Rng rng(seed);
    entities = RegisterParameter("entities",
                                 Tensor::Uniform({20000, 64}, -1, 1, &rng));
    relations = RegisterParameter("relations",
                                  Tensor::Uniform({64, 64}, -1, 1, &rng));
    head = RegisterParameter("head", Tensor::Uniform({256, 64}, -1, 1, &rng));
    bias = RegisterParameter("bias", Tensor::Uniform({64}, -1, 1, &rng));
  }
  ag::Var entities;
  ag::Var relations;
  ag::Var head;
  ag::Var bias;
};

void SeedOptimGrads(OptimBenchModule* mod, uint64_t seed, bool sparse) {
  Rng rng(seed);
  Tensor ge = Tensor::Zeros(mod->entities.value().shape());
  for (int64_t r = 0; r < ge.dim(0); ++r) {
    if (sparse && !rng.Bernoulli(0.05)) continue;
    for (int64_t j = 0; j < ge.dim(1); ++j) {
      ge.At(r, j) = static_cast<float>(rng.UniformDouble(-0.1, 0.1));
    }
  }
  mod->entities.impl()->AccumulateGrad(ge);
  mod->relations.impl()->AccumulateGrad(
      RandomTensor(mod->relations.value().shape(), seed + 1));
  mod->head.impl()->AccumulateGrad(
      RandomTensor(mod->head.value().shape(), seed + 2));
  mod->bias.impl()->AccumulateGrad(
      RandomTensor(mod->bias.value().shape(), seed + 3));
}

struct KernelPoint {
  std::string name;
  double seconds_old = 0.0;
  double seconds_new = 0.0;
  double speedup = 0.0;
  double gflops = 0.0;  // of the new kernel
  bool identical = false;
};

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads = BenchThreads();
  std::printf("bench_simd: lanes=%lld, col_tile=%lld, threads sweep {1, %d}\n",
              static_cast<long long>(tune::kLanes),
              static_cast<long long>(tune::kMatMulColTile), threads);
  // Kernel micro-benches run serial: the SIMD win must not hide behind
  // the pool.
  SetDefaultThreadCount(1);

  std::vector<KernelPoint> kernels;

  // -- Dense MatMul, the R-GCN basis-transform shape (nodes x hidden @
  // hidden x hidden) and a larger square. Order-preserving: bitwise vs
  // the historical kernel.
  {
    struct Dims {
      const char* name;
      int64_t m, k, n;
    };
    const Dims dims[] = {{"matmul_dense_512x32x32", 512, 32, 32},
                         {"matmul_dense_256x64x64", 256, 64, 64},
                         {"matmul_dense_128x128x128", 128, 128, 128}};
    for (const Dims& d : dims) {
      Tensor a = RandomTensor({d.m, d.k}, 11);
      Tensor b = RandomTensor({d.k, d.n}, 13);
      KernelPoint p;
      p.name = d.name;
      p.identical = BitEqual(MatMul(a, b), OldMatMul(a, b));
      p.seconds_old = TimeBest(5, [&] { OldMatMul(a, b); });
      p.seconds_new = TimeBest(5, [&] { MatMul(a, b); });
      p.speedup = p.seconds_old / p.seconds_new;
      p.gflops = 2.0 * static_cast<double>(d.m * d.k * d.n) / p.seconds_new /
                 1e9;
      kernels.push_back(p);
    }
  }

  // -- Dot-column MatMul ([m, k] x [k, 1]), the attention-logit shape.
  // Contract-changing: bitwise vs the fixed-lane reference, timed vs the
  // historical sequential kernel.
  {
    const int64_t m = 4096, k = 128;
    Tensor a = RandomTensor({m, k}, 17);
    Tensor b = RandomTensor({k, 1}, 19);
    KernelPoint p;
    p.name = "matmul_dot_column_4096x128x1";
    Tensor out = MatMul(a, b);
    p.identical = true;
    for (int64_t i = 0; i < m; ++i) {
      if (std::bit_cast<uint32_t>(out.Data()[i]) !=
          std::bit_cast<uint32_t>(ContractDot(a.Data() + i * k, b.Data(), k))) {
        p.identical = false;
        break;
      }
    }
    p.seconds_old = TimeBest(5, [&] { OldMatMul(a, b); });
    p.seconds_new = TimeBest(5, [&] { MatMul(a, b); });
    p.speedup = p.seconds_old / p.seconds_new;
    p.gflops = 2.0 * static_cast<double>(m * k) / p.seconds_new / 1e9;
    kernels.push_back(p);
  }

  // -- Zero-skipping MatMul on a mostly-zero lhs (one-hot node features).
  // Order-preserving: bitwise vs the historical zero-skip kernel.
  {
    Rng rng(23);
    Tensor a = Tensor::Zeros({512, 64});
    for (int64_t i = 0; i < a.numel(); ++i) {
      if (rng.Bernoulli(0.12)) {
        a.Data()[i] = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
      }
    }
    Tensor b = RandomTensor({64, 64}, 29);
    KernelPoint p;
    p.name = "matmul_skip_zero_512x64x64";
    p.identical = BitEqual(MatMulSkipZeroLhs(a, b), OldMatMulSkipZero(a, b));
    p.seconds_old = TimeBest(5, [&] { OldMatMulSkipZero(a, b); });
    p.seconds_new = TimeBest(5, [&] { MatMulSkipZeroLhs(a, b); });
    p.speedup = p.seconds_old / p.seconds_new;
    p.gflops =
        2.0 * static_cast<double>(512 * 64 * 64) / p.seconds_new / 1e9;
    kernels.push_back(p);
  }

  // -- Fused message sweep, the ForwardBatch hot loop: 20k messages over
  // 2k nodes, hidden 32, 4 bases, gated. Order-preserving: bitwise vs the
  // historical scalar sweep.
  {
    const int64_t num_nodes = 2048, dout = 32, num_bases = 4, m = 20000;
    Rng rng(31);
    std::vector<int64_t> src, dst;
    for (int64_t e = 0; e < m; ++e) {
      src.push_back(static_cast<int64_t>(
          rng.UniformUint64(static_cast<uint64_t>(num_nodes))));
      dst.push_back(static_cast<int64_t>(
          rng.UniformUint64(static_cast<uint64_t>(num_nodes))));
    }
    std::vector<Tensor> transformed, coeffs;
    std::vector<const float*> pt, pc;
    for (int64_t b = 0; b < num_bases; ++b) {
      transformed.push_back(
          RandomTensor({num_nodes, dout}, 37 + static_cast<uint64_t>(b)));
      coeffs.push_back(RandomTensor({m}, 41 + static_cast<uint64_t>(b)));
    }
    for (int64_t b = 0; b < num_bases; ++b) {
      pt.push_back(transformed[static_cast<size_t>(b)].Data());
      pc.push_back(coeffs[static_cast<size_t>(b)].Data());
    }
    Tensor gate = RandomTensor({m}, 43);
    Tensor out_new = Tensor::Zeros({num_nodes, dout});
    Tensor out_old = Tensor::Zeros({num_nodes, dout});
    gnn::FusedMessageSweep(src, dst, pt, pc, gate.Data(), dout,
                           out_new.Data());
    OldSweep(src, dst, pt, pc, gate.Data(), dout, out_old.Data());
    KernelPoint p;
    p.name = "fused_message_sweep_20k_msgs";
    p.identical = BitEqual(out_new, out_old);
    Tensor scratch = Tensor::Zeros({num_nodes, dout});
    p.seconds_old = TimeBest(5, [&] {
      scratch.FillZero();
      OldSweep(src, dst, pt, pc, gate.Data(), dout, scratch.Data());
    });
    p.seconds_new = TimeBest(5, [&] {
      scratch.FillZero();
      gnn::FusedMessageSweep(src, dst, pt, pc, gate.Data(), dout,
                             scratch.Data());
    });
    p.speedup = p.seconds_old / p.seconds_new;
    // Per message: 2*dout flops per basis + gate + accumulate.
    p.gflops = static_cast<double>(m) * static_cast<double>(dout) *
               (2.0 * static_cast<double>(num_bases) + 2.0) / p.seconds_new /
               1e9;
    kernels.push_back(p);
  }

  // -- Fused multi-tensor Adam step, dense and row-sparse. Bitwise: new
  // Step on a module vs the historical per-parameter loops applied to a
  // cloned parameter/state set.
  {
    nn::Adam::Options opt;
    opt.lr = 0.01;
    const float b1 = static_cast<float>(opt.beta1);
    const float b2 = static_cast<float>(opt.beta2);
    const float eps = static_cast<float>(opt.eps);

    // Identity check: 3 steps, alternating dense/sparse gradients.
    {
      OptimBenchModule mod(47);
      nn::Adam adam(&mod, opt);
      std::vector<Tensor> ref_w, ref_m, ref_v;
      for (const nn::Parameter& pr : mod.parameters()) {
        ref_w.push_back(pr.var.value().Clone());
        ref_m.push_back(Tensor::Zeros(pr.var.value().shape()));
        ref_v.push_back(Tensor::Zeros(pr.var.value().shape()));
      }
      nn::StepSparsity sparsity;
      for (const nn::Parameter& pr : mod.parameters()) {
        nn::StepSparsity::ParamPlan plan;
        if (pr.var.value().rank() == 2) {
          plan.mode = nn::StepSparsity::Mode::kAutoRows;
        }
        sparsity.plans.push_back(std::move(plan));
      }
      bool identical = true;
      for (int64_t step = 1; step <= 3; ++step) {
        mod.ZeroGrad();
        SeedOptimGrads(&mod, 53 + static_cast<uint64_t>(step), step % 2 == 0);
        const double bias1 = 1.0 - std::pow(opt.beta1, double(step));
        const double bias2 = 1.0 - std::pow(opt.beta2, double(step));
        const float lr_t =
            static_cast<float>(opt.lr * std::sqrt(bias2) / bias1);
        for (size_t i = 0; i < mod.parameters().size(); ++i) {
          const nn::Parameter& pr = mod.parameters()[i];
          OldAdamDense(ref_w[i].Data(), pr.var.grad().Data(),
                       ref_m[i].Data(), ref_v[i].Data(), ref_w[i].numel(),
                       b1, b2, eps, 0.0f, lr_t);
        }
        adam.Step(sparsity);
        for (size_t i = 0; i < mod.parameters().size(); ++i) {
          identical =
              identical && BitEqual(mod.parameters()[i].var.value(), ref_w[i]);
        }
      }
      KernelPoint p;
      p.name = "adam_fused_vs_historical_identity";
      p.identical = identical;
      p.seconds_old = 0.0;
      p.seconds_new = 0.0;
      p.speedup = 0.0;
      p.gflops = 0.0;
      kernels.push_back(p);
    }

    // Timing: dense fused step vs historical per-parameter loops on
    // same-shape raw tensors (values irrelevant to cost).
    {
      OptimBenchModule mod(59);
      nn::Adam adam(&mod, opt);
      mod.ZeroGrad();
      SeedOptimGrads(&mod, 61, /*sparse=*/false);
      std::vector<Tensor> w, g, m, v;
      int64_t total = 0;
      for (const nn::Parameter& pr : mod.parameters()) {
        w.push_back(pr.var.value().Clone());
        g.push_back(pr.var.grad().Clone());
        m.push_back(Tensor::Zeros(pr.var.value().shape()));
        v.push_back(Tensor::Zeros(pr.var.value().shape()));
        total += pr.var.value().numel();
      }
      KernelPoint p;
      p.name = "adam_step_dense_20k_rows";
      p.identical = true;  // covered by the identity point above
      p.seconds_old = TimeBest(5, [&] {
        for (size_t i = 0; i < w.size(); ++i) {
          OldAdamDense(w[i].Data(), g[i].Data(), m[i].Data(), v[i].Data(),
                       w[i].numel(), b1, b2, eps, 0.0f, 0.001f);
        }
      });
      p.seconds_new = TimeBest(5, [&] { adam.Step(); });
      p.speedup = p.seconds_old / p.seconds_new;
      p.gflops = 11.0 * static_cast<double>(total) / p.seconds_new / 1e9;
      kernels.push_back(p);
    }
  }

  // ----- End-to-end: packed score-batch and train-step across thread
  // counts, bitwise-gated serial vs parallel -----
  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);
  core::GsmConfig gsm_config;
  gsm_config.num_relations = dataset.num_relations();
  gsm_config.dim = 32;

  struct EndToEnd {
    double seconds_1t = 0.0;
    double seconds_nt = 0.0;
    bool identical = false;
  };
  EndToEnd score_batch, train_step;

  {
    Rng init(3);
    core::Gsm gsm(gsm_config, &init);
    std::vector<Triple> triples;
    for (const LabeledLink& link : dataset.test_links()) {
      triples.push_back(link.triple);
      if (triples.size() >= 64) break;
    }
    const std::vector<Subgraph> subs =
        gsm.ExtractBatch(dataset.inference_graph(), triples);
    std::vector<const Subgraph*> sub_ptrs;
    std::vector<RelationId> rels;
    for (size_t i = 0; i < subs.size(); ++i) {
      sub_ptrs.push_back(&subs[i]);
      rels.push_back(triples[i].rel);
    }
    SetDefaultThreadCount(1);
    std::vector<float> scores_1t = gsm.ScoreSubgraphsPacked(sub_ptrs, rels);
    score_batch.seconds_1t =
        TimeBest(3, [&] { gsm.ScoreSubgraphsPacked(sub_ptrs, rels); });
    SetDefaultThreadCount(threads);
    std::vector<float> scores_nt = gsm.ScoreSubgraphsPacked(sub_ptrs, rels);
    score_batch.seconds_nt =
        TimeBest(3, [&] { gsm.ScoreSubgraphsPacked(sub_ptrs, rels); });
    score_batch.identical = scores_1t == scores_nt;
  }

  {
    // A miniature training loop over pre-extracted subgraphs: forward,
    // hinge loss, backward, clip, fused sparse Adam step. Run twice from
    // identical init at 1 and N threads; final parameter state must be
    // bitwise identical.
    auto run_training = [&](int nthreads, double* seconds) {
      SetDefaultThreadCount(nthreads);
      Rng init(5);
      core::Gsm gsm(gsm_config, &init);
      nn::Adam::Options opt;
      opt.lr = 0.001;
      nn::Adam adam(&gsm, opt);
      nn::StepSparsity sparsity;
      for (const nn::Parameter& pr : gsm.parameters()) {
        nn::StepSparsity::ParamPlan plan;
        if (pr.var.value().rank() == 2) {
          plan.mode = nn::StepSparsity::Mode::kAutoRows;
        }
        sparsity.plans.push_back(std::move(plan));
      }
      std::vector<Triple> triples;
      for (const LabeledLink& link : dataset.test_links()) {
        triples.push_back(link.triple);
        if (triples.size() >= 16) break;
      }
      const std::vector<Subgraph> subs =
          gsm.ExtractBatch(dataset.inference_graph(), triples);
      Timer timer;
      for (size_t i = 0; i + 1 < subs.size(); i += 2) {
        gsm.ZeroGrad();
        Rng unused(0);
        ag::Var pos = gsm.ScoreSubgraph(subs[i], triples[i].rel,
                                        /*training=*/false, &unused);
        ag::Var neg = gsm.ScoreSubgraph(subs[i + 1], triples[i + 1].rel,
                                        /*training=*/false, &unused);
        ag::Var loss = ag::Relu(ag::AddScalar(ag::Sub(neg, pos), 1.0f));
        loss.Backward();
        nn::ClipGradNorm(&gsm, 5.0);
        adam.Step(sparsity);
      }
      *seconds = timer.ElapsedSeconds();
      return gsm.StateVector();
    };
    const std::vector<float> state_1t =
        run_training(1, &train_step.seconds_1t);
    const std::vector<float> state_nt =
        run_training(threads, &train_step.seconds_nt);
    train_step.identical =
        state_1t.size() == state_nt.size() &&
        std::equal(state_1t.begin(), state_1t.end(), state_nt.begin(),
                   [](float x, float y) {
                     return std::bit_cast<uint32_t>(x) ==
                            std::bit_cast<uint32_t>(y);
                   });
  }
  SetDefaultThreadCount(0);

  std::printf("\n%-34s %12s %12s %9s %9s %10s\n", "kernel", "old_s", "new_s",
              "speedup", "gflops", "identical");
  for (const KernelPoint& p : kernels) {
    std::printf("%-34s %12.6f %12.6f %8.2fx %9.2f %10s\n", p.name.c_str(),
                p.seconds_old, p.seconds_new, p.speedup, p.gflops,
                p.identical ? "yes" : "NO");
  }
  std::printf("\nend-to-end (threads 1 vs %d):\n", threads);
  std::printf("  score_batch: %.6fs -> %.6fs, identical=%s\n",
              score_batch.seconds_1t, score_batch.seconds_nt,
              score_batch.identical ? "yes" : "NO");
  std::printf("  train_step:  %.6fs -> %.6fs, identical=%s\n",
              train_step.seconds_1t, train_step.seconds_nt,
              train_step.identical ? "yes" : "NO");

  std::FILE* json = std::fopen("BENCH_simd.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_simd.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"lanes\": %lld,\n  \"col_tile\": %lld,\n",
               static_cast<long long>(tune::kLanes),
               static_cast<long long>(tune::kMatMulColTile));
  std::fprintf(json, "  \"kernels\": [");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelPoint& p = kernels[i];
    std::fprintf(json,
                 "%s\n    {\"name\": \"%s\", \"seconds_old\": %.6f, "
                 "\"seconds_new\": %.6f, \"speedup\": %.3f, "
                 "\"gflops\": %.3f, \"identical\": %s}",
                 i == 0 ? "" : ",", p.name.c_str(), p.seconds_old,
                 p.seconds_new, p.speedup, p.gflops,
                 p.identical ? "true" : "false");
  }
  std::fprintf(json,
               "\n  ],\n  \"end_to_end\": {\n"
               "    \"score_batch\": {\"seconds_1t\": %.6f, "
               "\"seconds_%dt\": %.6f, \"identical\": %s},\n"
               "    \"train_step\": {\"seconds_1t\": %.6f, "
               "\"seconds_%dt\": %.6f, \"identical\": %s}\n  }\n}\n",
               score_batch.seconds_1t, threads, score_batch.seconds_nt,
               score_batch.identical ? "true" : "false",
               train_step.seconds_1t, threads, train_step.seconds_nt,
               train_step.identical ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_simd.json\n");

  // The bitwise gate is the hard requirement; speedup is reported only.
  bool ok = score_batch.identical && train_step.identical;
  for (const KernelPoint& p : kernels) ok = ok && p.identical;
  return ok ? 0 : 1;
}
