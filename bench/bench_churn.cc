// DEKG-churn benchmark (DESIGN.md §13): a closed-loop ingest+scoring
// workload driven straight into two InferenceEngines stepping the SAME
// schedule — one maintaining cached subgraphs in place (patch_cache on),
// one with the invalidate-on-ingest reference policy. Swept over churn
// rate (one ingest every 8 / 2 / 1 score rounds). Every score round is
// gated on bitwise identity between the two engines, and the final
// scores are gated against the offline predictor on a statically built
// graph over the same triple multiset; a gate failure flips the exit
// code. Latency percentiles and hit/patch/fallback rates are reported,
// never gated — the expected shape is patch mode holding p99 scoring
// latency flat at high churn while invalidate mode degenerates into a
// re-extraction miss storm.
//
// Knobs: DEKG_BENCH_THREADS (default max(4, hw)), DEKG_BENCH_CHURN_ROUNDS
// (score rounds per sweep point, default 96), DEKG_BENCH_CHURN_BATCH
// (triples per score round, default 16). Results land in
// BENCH_churn.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "graph/subgraph.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace dekg::bench {
namespace {

using serve::EngineConfig;
using serve::EngineStats;
using serve::InferenceEngine;
using serve::IngestResponse;
using serve::ScoreItem;
using serve::Status;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

struct ModeResult {
  double score_p50_ms = 0.0;
  double score_p99_ms = 0.0;
  double ingest_p99_ms = 0.0;
  double hit_rate = 0.0;
  uint64_t patched = 0;
  uint64_t repaired = 0;
  uint64_t fallback = 0;
  uint64_t invalidated = 0;
};

struct ChurnPoint {
  int ingest_every = 1;
  bool gate_identical = false;
  ModeResult patch;
  ModeResult invalidate;
};

std::vector<ScoreItem> ItemsFor(const std::vector<Triple>& triples) {
  std::vector<ScoreItem> items;
  for (size_t i = 0; i < triples.size(); ++i) {
    items.push_back({triples[i], MixSeed(123, i)});
  }
  return items;
}

// One churn rate: both engines step `rounds` score rounds; every
// `ingest_every`-th round is preceded by an emerging-chunk ingest
// (cycling — exhausted streams re-ingest as duplicate edges, which is
// sustained-churn territory: multiplicity rises and touched entities
// keep hitting warm cache entries).
ChurnPoint RunPoint(core::DekgIlpModel* model, const DekgDataset& dataset,
                    const std::vector<Triple>& pool, int ingest_every,
                    int rounds, int batch_size, int chunk_size) {
  ChurnPoint point;
  point.ingest_every = ingest_every;

  EngineConfig patch_config;
  EngineConfig invalidate_config;
  invalidate_config.patch_cache = false;
  // This bench measures subgraph-cache maintenance; the score memo
  // would absorb intra-epoch repeats and hide the patch/invalidate gap.
  patch_config.score_memo_capacity = 0;
  invalidate_config.score_memo_capacity = 0;
  InferenceEngine patch_engine(model, dataset.original_graph(), patch_config);
  InferenceEngine invalidate_engine(model, dataset.original_graph(),
                                    invalidate_config);

  const std::vector<Triple>& emerging = dataset.emerging_triples();
  std::vector<Triple> ingested;
  size_t emerging_cursor = 0;
  std::vector<double> patch_score_ms, invalidate_score_ms;
  std::vector<double> patch_ingest_ms, invalidate_ingest_ms;
  point.gate_identical = true;

  for (int round = 0; round < rounds; ++round) {
    if (ingest_every > 0 && round % ingest_every == 0) {
      std::vector<Triple> chunk;
      for (int i = 0; i < chunk_size; ++i) {
        chunk.push_back(emerging[emerging_cursor % emerging.size()]);
        ++emerging_cursor;
      }
      IngestResponse response;
      Timer patch_timer;
      patch_engine.Ingest(chunk, &response);
      patch_ingest_ms.push_back(patch_timer.ElapsedMillis());
      if (response.status != Status::kOk) {
        std::fprintf(stderr, "ingest failed: %s\n", response.error.c_str());
        point.gate_identical = false;
        break;
      }
      Timer invalidate_timer;
      invalidate_engine.Ingest(chunk, &response);
      invalidate_ingest_ms.push_back(invalidate_timer.ElapsedMillis());
      ingested.insert(ingested.end(), chunk.begin(), chunk.end());
    }

    std::vector<Triple> triples;
    for (int i = 0; i < batch_size; ++i) {
      triples.push_back(
          pool[static_cast<size_t>(round * batch_size + i) % pool.size()]);
    }
    const std::vector<ScoreItem> items = ItemsFor(triples);
    Timer patch_timer;
    const std::vector<double> patched_scores = patch_engine.ScoreBatch(items);
    patch_score_ms.push_back(patch_timer.ElapsedMillis());
    Timer invalidate_timer;
    const std::vector<double> invalidated_scores =
        invalidate_engine.ScoreBatch(items);
    invalidate_score_ms.push_back(invalidate_timer.ElapsedMillis());

    // Hard gate: bitwise identity at every point of the schedule.
    if (patched_scores != invalidated_scores) {
      std::fprintf(stderr, "GATE FAIL: round %d scores diverge\n", round);
      point.gate_identical = false;
      break;
    }
  }

  if (point.gate_identical) {
    // Final gate: both engines vs the offline predictor on a statically
    // built graph over base + ingested (the ordering invariant).
    std::vector<Triple> all = dataset.original_graph().Triples();
    all.insert(all.end(), ingested.begin(), ingested.end());
    const KnowledgeGraph oracle =
        BuildGraph(dataset.inference_graph().num_entities(),
                   dataset.num_relations(), all);
    std::vector<Triple> sample(pool.begin(),
                               pool.begin() + std::min<size_t>(pool.size(), 16));
    core::DekgIlpPredictor predictor(model);
    const std::vector<double> offline = predictor.ScoreTriples(oracle, sample);
    const std::vector<double> online =
        patch_engine.ScoreBatch(ItemsFor(sample));
    if (online != offline) {
      std::fprintf(stderr, "GATE FAIL: patched engine vs static oracle\n");
      point.gate_identical = false;
    }
  }

  const auto fill = [](const EngineStats& stats,
                       const std::vector<double>& score_ms,
                       const std::vector<double>& ingest_ms) {
    ModeResult r;
    r.score_p50_ms = Percentile(score_ms, 0.50);
    r.score_p99_ms = Percentile(score_ms, 0.99);
    r.ingest_p99_ms = Percentile(ingest_ms, 0.99);
    const double lookups =
        static_cast<double>(stats.cache_hits + stats.cache_misses);
    r.hit_rate =
        lookups > 0.0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
    r.patched = stats.cache_patched;
    r.repaired = stats.cache_repaired;
    r.fallback = stats.cache_fallback;
    r.invalidated = stats.cache_invalidated;
    return r;
  };
  point.patch = fill(patch_engine.Stats(), patch_score_ms, patch_ingest_ms);
  point.invalidate = fill(invalidate_engine.Stats(), invalidate_score_ms,
                          invalidate_ingest_ms);
  return point;
}

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads =
      std::max(4, EnvInt("DEKG_BENCH_THREADS",
                         static_cast<int>(std::thread::hardware_concurrency())));
  const int rounds = EnvInt("DEKG_BENCH_CHURN_ROUNDS", 96);
  const int batch_size = EnvInt("DEKG_BENCH_CHURN_BATCH", 16);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  core::DekgIlpConfig model_config;
  model_config.num_relations = dataset.num_relations();
  model_config.dim = 16;
  core::DekgIlpModel model(model_config, /*seed=*/1);

  std::vector<Triple> pool;
  for (const LabeledLink& link : dataset.test_links()) {
    pool.push_back(link.triple);
    if (pool.size() >= 48) break;
  }
  if (pool.empty() || dataset.emerging_triples().empty()) {
    std::fprintf(stderr, "dataset has no workload\n");
    return 1;
  }

  std::printf(
      "bench_churn: %d threads, %d score rounds x %d triples, "
      "%zu-triple pool, %zu emerging\n",
      threads, rounds, batch_size, pool.size(),
      dataset.emerging_triples().size());
  SetDefaultThreadCount(threads);

  std::vector<ChurnPoint> points;
  for (int ingest_every : {8, 2, 1}) {
    points.push_back(RunPoint(&model, dataset, pool, ingest_every, rounds,
                              batch_size, /*chunk_size=*/4));
  }
  SetDefaultThreadCount(0);

  std::printf("\n%12s %6s | %10s %10s %9s %18s | %10s %10s %9s\n",
              "ingest_every", "gate", "patch p50", "patch p99", "hit-rate",
              "patch/repair/fall", "inval p50", "inval p99", "hit-rate");
  for (const ChurnPoint& p : points) {
    char maintenance[32];
    std::snprintf(maintenance, sizeof(maintenance), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(p.patch.patched),
                  static_cast<unsigned long long>(p.patch.repaired),
                  static_cast<unsigned long long>(p.patch.fallback));
    std::printf("%12d %6s | %9.3fms %9.3fms %8.1f%% %18s | %9.3fms %9.3fms "
                "%8.1f%%\n",
                p.ingest_every, p.gate_identical ? "ok" : "FAIL",
                p.patch.score_p50_ms, p.patch.score_p99_ms,
                p.patch.hit_rate * 100.0, maintenance,
                p.invalidate.score_p50_ms, p.invalidate.score_p99_ms,
                p.invalidate.hit_rate * 100.0);
  }

  std::FILE* json = std::fopen("BENCH_churn.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_churn.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"rounds\": %d,\n  \"batch_size\": %d,\n"
               "  \"threads\": %d,\n  \"sweep\": [",
               rounds, batch_size, threads);
  for (size_t i = 0; i < points.size(); ++i) {
    const ChurnPoint& p = points[i];
    const auto mode = [json](const char* name, const ModeResult& r,
                             const char* tail) {
      std::fprintf(json,
                   "      \"%s\": {\n"
                   "        \"score_p50_ms\": %.4f,\n"
                   "        \"score_p99_ms\": %.4f,\n"
                   "        \"ingest_p99_ms\": %.4f,\n"
                   "        \"cache_hit_rate\": %.4f,\n"
                   "        \"patched\": %llu,\n"
                   "        \"repaired\": %llu,\n"
                   "        \"fallback\": %llu,\n"
                   "        \"invalidated\": %llu\n      }%s\n",
                   name, r.score_p50_ms, r.score_p99_ms, r.ingest_p99_ms,
                   r.hit_rate, static_cast<unsigned long long>(r.patched),
                   static_cast<unsigned long long>(r.repaired),
                   static_cast<unsigned long long>(r.fallback),
                   static_cast<unsigned long long>(r.invalidated), tail);
    };
    std::fprintf(json,
                 "%s\n    {\n      \"ingest_every\": %d,\n"
                 "      \"gate_identical\": %s,\n",
                 i == 0 ? "" : ",", p.ingest_every,
                 p.gate_identical ? "true" : "false");
    mode("patch", p.patch, ",");
    mode("invalidate", p.invalidate, "");
    std::fprintf(json, "    }");
  }
  // Process-wide extraction counters across the whole sweep (cache misses
  // in both engines plus the offline gate's extractions): the churn trail
  // makes extraction-cost regressions visible next to the hit rates.
  const ExtractionCounters extract = GetExtractionCounters();
  std::fprintf(json,
               "\n  ],\n  \"extraction\": {\n"
               "    \"extractions\": %llu,\n"
               "    \"bfs_popped\": %llu,\n"
               "    \"candidates_kept\": %llu\n  }\n}\n",
               static_cast<unsigned long long>(extract.extractions),
               static_cast<unsigned long long>(extract.bfs_popped),
               static_cast<unsigned long long>(extract.candidates_kept));
  std::fclose(json);
  std::printf("\nwrote BENCH_churn.json\n");

  // Latency depends on the machine; only the bitwise gates are hard.
  for (const ChurnPoint& p : points) {
    if (!p.gate_identical) return 1;
  }
  return 0;
}
