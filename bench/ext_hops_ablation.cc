// Extension ablation — subgraph radius t (num_hops), a design choice
// DESIGN.md calls out for GSM. GraIL-style models use t-hop enclosing
// subgraphs; larger t sees longer rule bodies at superlinear extraction
// cost, while the improved labeling keeps union neighborhoods whose size
// also grows with t. Reported: Hits@10 by link kind and train time per
// epoch for t ∈ {1, 2, 3} on FB15k-237 EQ.
#include <cstdio>

#include "bench/experiment.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Extension: subgraph radius ablation (FB15k-237 EQ, "
              "scale=%.2f)\n", config.scale);
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);
  std::printf("%-6s %16s %16s %14s\n", "hops", "enclosing H@10",
              "bridging H@10", "s/epoch");

  for (int32_t hops : {1, 2, 3}) {
    core::DekgIlpConfig ilp;
    ilp.num_relations = dataset.num_relations();
    ilp.dim = config.dim;
    ilp.num_hops = hops;
    ilp.num_contrastive_samples = 6;
    core::DekgIlpModel model(ilp, config.seed ^ 0xa1);
    core::TrainConfig train;
    train.epochs = config.subgraph_epochs;
    train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
    train.seed = config.seed ^ 0xa2;
    Timer timer;
    core::DekgIlpTrainer(&model, &dataset, train).Train();
    const double per_epoch = timer.ElapsedSeconds() / train.epochs;

    core::DekgIlpPredictor predictor(&model);
    EvalConfig eval;
    eval.num_entity_negatives = config.eval_negatives;
    eval.max_links = config.eval_links;
    eval.seed = config.seed ^ 0xa3;
    EvalResult result = Evaluate(&predictor, dataset, eval);
    std::printf("%-6d %16.3f %16.3f %14.3f\n", hops,
                result.enclosing.hits_at_10, result.bridging.hits_at_10,
                per_epoch);
  }
  return 0;
}
