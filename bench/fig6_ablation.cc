// Fig. 6 — ablation study: Hits@10 of DEKG-ILP against its three variants
// on each dataset/split, broken down by link kind.
//   DEKG-ILP-R: semantic score removed  -> bridging collapses hardest
//   DEKG-ILP-C: contrastive loss off    -> moderate, feature quality drops
//   DEKG-ILP-N: original node labeling  -> ~2-3% bridging drop, enclosing
//                                          roughly neutral (can backfire)
#include <cstdio>

#include "bench/experiment.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Fig. 6: ablation Hits@10 by link kind (scale=%.2f)\n",
              config.scale);

  const datagen::KgFamily families[] = {datagen::KgFamily::kFbLike,
                                        datagen::KgFamily::kNellLike,
                                        datagen::KgFamily::kWnLike};
  const datagen::EvalSplit splits[] = {datagen::EvalSplit::kEq,
                                       datagen::EvalSplit::kMb,
                                       datagen::EvalSplit::kMe};

  for (datagen::KgFamily family : families) {
    for (datagen::EvalSplit split : splits) {
      DekgDataset dataset = MakeDataset(family, split, config);
      std::printf("\n== %s ==\n", dataset.name().c_str());
      std::printf("%-14s %18s %18s\n", "Variant", "enclosing H@10",
                  "bridging H@10");
      for (ModelKind kind : AblationModels()) {
        ModelRun run = RunModel(kind, dataset, config);
        std::printf("%-14s %18.3f %18.3f\n", run.name.c_str(),
                    run.result.enclosing.hits_at_10,
                    run.result.bridging.hits_at_10);
      }
    }
  }
  return 0;
}
