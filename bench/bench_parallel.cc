// Serial-vs-parallel speedup for the three layers the thread pool
// accelerates: the evaluation ranking loop, GSM batched subgraph scoring,
// and the tensor kernels (MatMul + large elementwise). Also verifies the
// determinism contract (parallel output bit-identical to serial) and the
// dense-vs-zero-skip MatMul tradeoff.
//
// Thread count: DEKG_BENCH_THREADS if set, else the machine's hardware
// concurrency, floored at 4 so the report always exercises a real pool
// (on a 1-core container the wall-clock speedup then honestly reads ~1x).
// Results land in BENCH_parallel.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "core/gsm.h"
#include "tensor/tensor.h"

namespace dekg::bench {
namespace {

struct LayerReport {
  std::string name;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool identical = false;

  double Speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

int BenchThreads() {
  if (const char* env = std::getenv("DEKG_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw));
}

// Best-of-k wall time of fn(), in seconds.
template <typename F>
double TimeBest(int repetitions, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

bool SameMetrics(const EvalResult& a, const EvalResult& b) {
  return a.overall.mrr == b.overall.mrr &&
         a.overall.hits_at_1 == b.overall.hits_at_1 &&
         a.overall.hits_at_10 == b.overall.hits_at_10 &&
         a.overall.num_tasks == b.overall.num_tasks;
}

LayerReport BenchEvaluate(const DekgDataset& dataset, int threads) {
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  core::DekgIlpModel model(config, /*seed=*/1);
  core::DekgIlpPredictor predictor(&model);

  EvalConfig eval;
  eval.num_entity_negatives = 12;
  eval.max_links = 24;

  EvalResult serial_result, parallel_result;
  LayerReport report;
  report.name = "evaluate_ranking";
  SetDefaultThreadCount(1);
  eval.num_threads = 1;
  report.serial_seconds = TimeBest(2, [&] {
    serial_result = Evaluate(&predictor, dataset, eval);
  });
  SetDefaultThreadCount(threads);
  eval.num_threads = threads;
  report.parallel_seconds = TimeBest(2, [&] {
    parallel_result = Evaluate(&predictor, dataset, eval);
  });
  SetDefaultThreadCount(0);
  report.identical = SameMetrics(serial_result, parallel_result);
  return report;
}

LayerReport BenchGsmBatch(const DekgDataset& dataset, int threads) {
  core::GsmConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  Rng init(3);
  core::Gsm gsm(config, &init);
  const KnowledgeGraph& graph = dataset.inference_graph();

  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    triples.push_back(link.triple);
    if (triples.size() >= 48) break;
  }

  std::vector<double> serial_scores, parallel_scores;
  LayerReport report;
  report.name = "gsm_batch_scoring";
  SetDefaultThreadCount(1);
  report.serial_seconds = TimeBest(2, [&] {
    serial_scores = gsm.ScoreTriplesBatch(graph, triples, /*seed=*/9);
  });
  SetDefaultThreadCount(threads);
  report.parallel_seconds = TimeBest(2, [&] {
    parallel_scores = gsm.ScoreTriplesBatch(graph, triples, /*seed=*/9);
  });
  SetDefaultThreadCount(0);
  report.identical = serial_scores == parallel_scores;
  return report;
}

LayerReport BenchMatMul(int threads) {
  Rng rng(17);
  const Tensor a = Tensor::Uniform(Shape{384, 256}, -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::Uniform(Shape{256, 384}, -1.0f, 1.0f, &rng);

  Tensor serial_out, parallel_out;
  LayerReport report;
  report.name = "matmul";
  SetDefaultThreadCount(1);
  report.serial_seconds = TimeBest(3, [&] { serial_out = MatMul(a, b); });
  SetDefaultThreadCount(threads);
  report.parallel_seconds = TimeBest(3, [&] { parallel_out = MatMul(a, b); });
  SetDefaultThreadCount(0);
  report.identical = AllClose(serial_out, parallel_out, 0.0f);
  return report;
}

LayerReport BenchElementwise(int threads) {
  Rng rng(23);
  const Tensor a = Tensor::Uniform(Shape{2048, 1024}, -4.0f, 4.0f, &rng);

  Tensor serial_out, parallel_out;
  LayerReport report;
  report.name = "elementwise_sigmoid";
  SetDefaultThreadCount(1);
  report.serial_seconds = TimeBest(3, [&] { serial_out = Sigmoid(a); });
  SetDefaultThreadCount(threads);
  report.parallel_seconds = TimeBest(3, [&] { parallel_out = Sigmoid(a); });
  SetDefaultThreadCount(0);
  report.identical = AllClose(serial_out, parallel_out, 0.0f);
  return report;
}

// Satellite check: the zero-skip branch must lose on dense inputs and win
// on mostly-zero inputs, both against the dense kernel, single-threaded.
void BenchZeroSkipTradeoff(std::FILE* json) {
  Rng rng(29);
  SetDefaultThreadCount(1);
  const Tensor dense = Tensor::Uniform(Shape{256, 256}, 0.5f, 1.0f, &rng);
  const Tensor b = Tensor::Uniform(Shape{256, 256}, -1.0f, 1.0f, &rng);
  Tensor sparse = Tensor::Zeros(Shape{256, 256});
  for (int64_t i = 0; i < sparse.dim(0); ++i) {
    // ~4 nonzeros per row, like one-hot double-radius node labels.
    for (int j = 0; j < 4; ++j) {
      sparse.At(i, static_cast<int64_t>(rng.UniformUint64(256))) = 1.0f;
    }
  }
  const double dense_plain = TimeBest(3, [&] { MatMul(dense, b); });
  const double dense_skip = TimeBest(3, [&] { MatMulSkipZeroLhs(dense, b); });
  const double sparse_plain = TimeBest(3, [&] { MatMul(sparse, b); });
  const double sparse_skip = TimeBest(3, [&] { MatMulSkipZeroLhs(sparse, b); });
  SetDefaultThreadCount(0);
  std::printf("\nzero-skip tradeoff (1 thread, 256x256x256):\n");
  std::printf("  dense lhs : plain %.6fs  skip %.6fs  (skip/plain %.2fx)\n",
              dense_plain, dense_skip, dense_skip / dense_plain);
  std::printf("  sparse lhs: plain %.6fs  skip %.6fs  (skip/plain %.2fx)\n",
              sparse_plain, sparse_skip, sparse_skip / sparse_plain);
  std::fprintf(json,
               ",\n  \"zero_skip_tradeoff\": {\n"
               "    \"dense_plain_s\": %.6f,\n"
               "    \"dense_skip_s\": %.6f,\n"
               "    \"sparse_plain_s\": %.6f,\n"
               "    \"sparse_skip_s\": %.6f\n"
               "  }",
               dense_plain, dense_skip, sparse_plain, sparse_skip);
}

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads = BenchThreads();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_parallel: %d threads (hardware concurrency %u)\n",
              threads, hw);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  std::vector<LayerReport> reports;
  reports.push_back(BenchEvaluate(dataset, threads));
  reports.push_back(BenchGsmBatch(dataset, threads));
  reports.push_back(BenchMatMul(threads));
  reports.push_back(BenchElementwise(threads));

  std::printf("\n%-22s %12s %12s %9s %10s\n", "layer", "serial(s)",
              "parallel(s)", "speedup", "identical");
  for (const LayerReport& r : reports) {
    std::printf("%-22s %12.6f %12.6f %8.2fx %10s\n", r.name.c_str(),
                r.serial_seconds, r.parallel_seconds, r.Speedup(),
                r.identical ? "yes" : "NO");
  }

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads\": %d,\n  \"hardware_concurrency\": %u,\n",
               threads, hw);
  std::fprintf(json, "  \"layers\": {");
  for (size_t i = 0; i < reports.size(); ++i) {
    const LayerReport& r = reports[i];
    std::fprintf(json,
                 "%s\n    \"%s\": {\n"
                 "      \"serial_s\": %.6f,\n"
                 "      \"parallel_s\": %.6f,\n"
                 "      \"speedup\": %.3f,\n"
                 "      \"identical\": %s\n    }",
                 i == 0 ? "" : ",", r.name.c_str(), r.serial_seconds,
                 r.parallel_seconds, r.Speedup(), r.identical ? "true" : "false");
  }
  std::fprintf(json, "\n  }");
  BenchZeroSkipTradeoff(json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_parallel.json\n");

  // Determinism is a hard requirement; wall-clock speedup depends on the
  // machine, so only identity failures flip the exit code.
  for (const LayerReport& r : reports) {
    if (!r.identical) return 1;
  }
  return 0;
}
