// Training-path performance report for the data-parallel trainer:
// serial-vs-parallel epoch wall time (with the bitwise determinism
// contract checked on losses, parameters, and metrics), subgraph-cache
// hit rates and epoch-time savings, and the dense-vs-row-sparse Adam
// step on an embedding-heavy parameter. Results land in BENCH_train.json.
//
// Thread count: DEKG_BENCH_THREADS if set, else hardware concurrency,
// floored at 4 (same convention as bench_parallel).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/trainer.h"
#include "graph/subgraph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace dekg::bench {
namespace {

int BenchThreads() {
  if (const char* env = std::getenv("DEKG_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw));
}

std::vector<uint8_t> ParamBytes(const nn::Module& module) {
  std::vector<uint8_t> bytes;
  module.SerializeParameters(&bytes);
  return bytes;
}

core::DekgIlpConfig ModelConfig(const DekgDataset& dataset) {
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  config.num_contrastive_samples = 4;
  return config;
}

core::TrainConfig BaseTrain() {
  core::TrainConfig train;
  train.epochs = 2;
  train.max_triples_per_epoch = 120;
  train.seed = 11;
  return train;
}

struct TrainRun {
  double seconds = 0.0;
  std::vector<double> losses;
  std::vector<uint8_t> params;
};

TrainRun RunTraining(const DekgDataset& dataset, int32_t threads,
                     bool use_cache, bool sparse) {
  core::TrainConfig train = BaseTrain();
  train.num_threads = threads;
  train.use_subgraph_cache = use_cache;
  train.sparse_optimizer = sparse;
  TrainRun run;
  core::DekgIlpModel model(ModelConfig(dataset), /*seed=*/5);
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  Timer timer;
  run.losses = trainer.Train();
  run.seconds = timer.ElapsedSeconds();
  run.params = ParamBytes(model);
  return run;
}

// ----- Serial vs parallel full training -----

struct ParallelReport {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  bool identical = false;
};

ParallelReport BenchTrainParallel(const DekgDataset& dataset, int threads) {
  const TrainRun serial = RunTraining(dataset, 1, true, true);
  const TrainRun parallel = RunTraining(dataset, threads, true, true);
  ParallelReport report;
  report.serial_s = serial.seconds;
  report.parallel_s = parallel.seconds;
  report.identical =
      serial.losses == parallel.losses && serial.params == parallel.params;
  return report;
}

// ----- Subgraph cache: per-epoch hit rate and epoch-time savings -----

struct CacheEpoch {
  int64_t hits = 0;
  int64_t misses = 0;
  double seconds = 0.0;

  double HitRate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

struct CacheReport {
  std::vector<CacheEpoch> epochs;     // cache enabled
  std::vector<double> uncached_s;     // same epochs, cache disabled
  bool identical = false;             // cached losses == uncached losses
};

CacheReport BenchSubgraphCache(const DekgDataset& dataset, int threads) {
  constexpr int kEpochs = 3;
  CacheReport report;
  core::TrainConfig train = BaseTrain();
  train.num_threads = threads;
  // Visit the full triple set every epoch: from epoch 2 on, every positive
  // subgraph is already resident, which is the ≥99%-hit-rate contract the
  // exit code enforces. (A per-epoch subsample would naturally miss on
  // triples it has not drawn before — that is workload, not cache, churn.)
  train.max_triples_per_epoch = 0;
  std::vector<double> cached_losses, uncached_losses;
  {
    core::DekgIlpModel model(ModelConfig(dataset), /*seed=*/5);
    core::DekgIlpTrainer trainer(&model, &dataset, train);
    for (int e = 0; e < kEpochs; ++e) {
      CacheEpoch epoch;
      Timer timer;
      cached_losses.push_back(trainer.TrainEpoch());
      epoch.seconds = timer.ElapsedSeconds();
      epoch.hits = trainer.subgraph_cache().stats().hits;
      epoch.misses = trainer.subgraph_cache().stats().misses;
      report.epochs.push_back(epoch);
    }
  }
  {
    core::TrainConfig uncached = train;
    uncached.use_subgraph_cache = false;
    core::DekgIlpModel model(ModelConfig(dataset), /*seed=*/5);
    core::DekgIlpTrainer trainer(&model, &dataset, uncached);
    for (int e = 0; e < kEpochs; ++e) {
      Timer timer;
      uncached_losses.push_back(trainer.TrainEpoch());
      report.uncached_s.push_back(timer.ElapsedSeconds());
    }
  }
  report.identical = cached_losses == uncached_losses;
  return report;
}

// ----- Dense vs row-sparse Adam on an embedding-heavy parameter -----

struct SparseReport {
  double dense_step_s = 0.0;
  double sparse_step_s = 0.0;
  bool identical = false;
};

// 32768 x 64 table, ~32 gathered rows per step: the regime the sparse
// path is built for (a tiny fraction of rows touched per step).
SparseReport BenchSparseAdam() {
  constexpr int64_t kRows = 32768;
  constexpr int64_t kDim = 64;
  constexpr int kSteps = 10;
  Rng rng_a(31), rng_b(31);
  nn::Embedding dense_table(kRows, kDim, &rng_a);
  nn::Embedding sparse_table(kRows, kDim, &rng_b);
  nn::Adam dense_opt(&dense_table, {.lr = 0.01});
  nn::Adam sparse_opt(&sparse_table, {.lr = 0.01});
  nn::StepSparsity sparsity;
  {
    nn::StepSparsity::ParamPlan plan;
    plan.mode = nn::StepSparsity::Mode::kAutoRows;
    sparsity.plans.push_back(plan);
  }

  Rng index_rng(37);
  std::vector<std::vector<int64_t>> batches;
  for (int s = 0; s < kSteps; ++s) {
    std::vector<int64_t> rows;
    for (int k = 0; k < 32; ++k) {
      rows.push_back(static_cast<int64_t>(
          index_rng.UniformUint64(static_cast<uint64_t>(kRows))));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    batches.push_back(std::move(rows));
  }

  auto backward = [](nn::Embedding* table, const std::vector<int64_t>& rows) {
    table->ZeroGrad();
    ag::SumAll(ag::Square(table->Forward(rows))).Backward();
  };

  SparseReport report;
  Timer dense_timer;
  for (const auto& rows : batches) {
    backward(&dense_table, rows);
    dense_opt.Step();
  }
  report.dense_step_s = dense_timer.ElapsedSeconds() / kSteps;
  Timer sparse_timer;
  for (const auto& rows : batches) {
    backward(&sparse_table, rows);
    sparse_opt.Step(sparsity);
  }
  report.sparse_step_s = sparse_timer.ElapsedSeconds() / kSteps;
  report.identical =
      ParamBytes(dense_table) == ParamBytes(sparse_table);
  return report;
}

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads = BenchThreads();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_train: %d threads (hardware concurrency %u)\n", threads,
              hw);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  const ParallelReport par = BenchTrainParallel(dataset, threads);
  std::printf("\ntraining (%d epochs): serial %.3fs  parallel %.3fs  "
              "(%.2fx)  identical %s\n",
              BaseTrain().epochs, par.serial_s, par.parallel_s,
              par.parallel_s > 0.0 ? par.serial_s / par.parallel_s : 0.0,
              par.identical ? "yes" : "NO");

  const CacheReport cache = BenchSubgraphCache(dataset, threads);
  std::printf("\nsubgraph cache (losses identical %s):\n",
              cache.identical ? "yes" : "NO");
  bool hit_rate_ok = true;
  for (size_t e = 0; e < cache.epochs.size(); ++e) {
    const CacheEpoch& ep = cache.epochs[e];
    std::printf(
        "  epoch %zu: hits %lld  misses %lld  hit-rate %.1f%%  "
        "cached %.3fs  uncached %.3fs\n",
        e + 1, static_cast<long long>(ep.hits),
        static_cast<long long>(ep.misses), 100.0 * ep.HitRate(), ep.seconds,
        cache.uncached_s[e]);
    if (e >= 1 && ep.HitRate() < 0.99) hit_rate_ok = false;
  }

  const SparseReport sparse = BenchSparseAdam();
  std::printf("\nadam 32768x64, ~32 rows/step: dense %.6fs/step  "
              "sparse %.6fs/step  (%.1fx)  identical %s\n",
              sparse.dense_step_s, sparse.sparse_step_s,
              sparse.sparse_step_s > 0.0
                  ? sparse.dense_step_s / sparse.sparse_step_s
                  : 0.0,
              sparse.identical ? "yes" : "NO");

  std::FILE* json = std::fopen("BENCH_train.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_train.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads\": %d,\n  \"hardware_concurrency\": %u,\n",
               threads, hw);
  std::fprintf(json,
               "  \"train_parallel\": {\n"
               "    \"epochs\": %d,\n"
               "    \"serial_s\": %.6f,\n"
               "    \"parallel_s\": %.6f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical\": %s\n  },\n",
               BaseTrain().epochs, par.serial_s, par.parallel_s,
               par.parallel_s > 0.0 ? par.serial_s / par.parallel_s : 0.0,
               par.identical ? "true" : "false");
  std::fprintf(json, "  \"subgraph_cache\": {\n    \"epochs\": [");
  for (size_t e = 0; e < cache.epochs.size(); ++e) {
    const CacheEpoch& ep = cache.epochs[e];
    std::fprintf(json,
                 "%s\n      {\"hits\": %lld, \"misses\": %lld, "
                 "\"hit_rate\": %.4f, \"cached_s\": %.6f, "
                 "\"uncached_s\": %.6f}",
                 e == 0 ? "" : ",", static_cast<long long>(ep.hits),
                 static_cast<long long>(ep.misses), ep.HitRate(), ep.seconds,
                 cache.uncached_s[e]);
  }
  std::fprintf(json, "\n    ],\n    \"losses_identical\": %s\n  },\n",
               cache.identical ? "true" : "false");
  std::fprintf(json,
               "  \"sparse_adam\": {\n"
               "    \"rows\": 32768,\n    \"dim\": 64,\n"
               "    \"touched_rows_per_step\": 32,\n"
               "    \"dense_step_s\": %.6f,\n"
               "    \"sparse_step_s\": %.6f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical\": %s\n  },\n",
               sparse.dense_step_s, sparse.sparse_step_s,
               sparse.sparse_step_s > 0.0
                   ? sparse.dense_step_s / sparse.sparse_step_s
                   : 0.0,
               sparse.identical ? "true" : "false");
  // Process-wide extraction counters across every phase above: a cost
  // regression in the sparse extraction path shows up as bfs_popped or
  // candidates_kept drifting between runs of the same bench build.
  const ExtractionCounters extract = GetExtractionCounters();
  std::fprintf(json,
               "  \"extraction\": {\n"
               "    \"extractions\": %llu,\n"
               "    \"bfs_popped\": %llu,\n"
               "    \"candidates_kept\": %llu\n  }\n}\n",
               static_cast<unsigned long long>(extract.extractions),
               static_cast<unsigned long long>(extract.bfs_popped),
               static_cast<unsigned long long>(extract.candidates_kept));
  std::fclose(json);
  std::printf("\nwrote BENCH_train.json\n");

  // Determinism and the cache contract are hard requirements; wall-clock
  // numbers are machine-dependent and only reported.
  if (!par.identical || !cache.identical || !sparse.identical) return 1;
  if (!hit_rate_ok) {
    std::fprintf(stderr, "cache hit rate below 99%% after epoch 1\n");
    return 1;
  }
  return 0;
}
