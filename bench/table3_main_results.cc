// Table III — main results: MRR / Hits@1 / Hits@5 / Hits@10 of all eight
// models on the EQ / MB / ME splits of the three dataset families, with
// mixed enclosing + bridging test sets.
//
// Expected shape (paper): DEKG-ILP wins everywhere; Grail is the best
// baseline; TACT trails Grail on head/tail prediction; RuleN is sharp at
// Hits@1 but flat above; TransE/RotatE/ConvE/GEN are weak because unseen
// entities have (near-)random embeddings.
#include <cstdio>

#include "bench/experiment.h"
#include "common/logging.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Table III: main results (mixed enclosing + bridging test set)\n");
  std::printf("scale=%.2f epochs=%d links=%d seed=%llu\n", config.scale,
              config.subgraph_epochs, config.eval_links,
              static_cast<unsigned long long>(config.seed));

  const datagen::KgFamily families[] = {datagen::KgFamily::kFbLike,
                                        datagen::KgFamily::kNellLike,
                                        datagen::KgFamily::kWnLike};
  const datagen::EvalSplit splits[] = {datagen::EvalSplit::kEq,
                                       datagen::EvalSplit::kMb,
                                       datagen::EvalSplit::kMe};

  for (datagen::KgFamily family : families) {
    for (datagen::EvalSplit split : splits) {
      DekgDataset dataset = MakeDataset(family, split, config);
      std::string title = std::string(datagen::KgFamilyName(family)) + " " +
                          datagen::EvalSplitName(split);
      PrintTableHeader(title);
      for (ModelKind kind : TableThreeModels()) {
        ModelRun run = RunModel(kind, dataset, config);
        PrintMetricsRow(run.name, run.result.overall);
      }
    }
  }
  return 0;
}
