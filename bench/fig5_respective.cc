// Fig. 5 — respective study: Hits@10 on enclosing links only vs bridging
// links only, per dataset/split, for the six models the paper plots
// (DEKG-ILP, Grail, TACT, RuleN, GEN, TransE).
//
// Expected shape: on enclosing links the subgraph methods are competitive
// and DEKG-ILP leads; on bridging links Grail/TACT/RuleN collapse (no
// connected subgraph, no rule path), GEN stays near chance, TransE retains
// partial signal, and DEKG-ILP dominates thanks to CLRM.
#include <cstdio>

#include "bench/experiment.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Fig. 5: Hits@10 by link kind (scale=%.2f)\n", config.scale);

  const ModelKind models[] = {ModelKind::kTransE, ModelKind::kGen,
                              ModelKind::kRuleN,  ModelKind::kGrail,
                              ModelKind::kTact,   ModelKind::kDekgIlp};
  const datagen::KgFamily families[] = {datagen::KgFamily::kFbLike,
                                        datagen::KgFamily::kNellLike,
                                        datagen::KgFamily::kWnLike};
  const datagen::EvalSplit splits[] = {datagen::EvalSplit::kEq,
                                       datagen::EvalSplit::kMb,
                                       datagen::EvalSplit::kMe};

  for (datagen::KgFamily family : families) {
    for (datagen::EvalSplit split : splits) {
      DekgDataset dataset = MakeDataset(family, split, config);
      std::printf("\n== %s ==\n", dataset.name().c_str());
      std::printf("%-14s %18s %18s\n", "Model", "enclosing H@10",
                  "bridging H@10");
      for (ModelKind kind : models) {
        ModelRun run = RunModel(kind, dataset, config);
        std::printf("%-14s %18.3f %18.3f\n", run.name.c_str(),
                    run.result.enclosing.hits_at_10,
                    run.result.bridging.hits_at_10);
      }
    }
  }
  return 0;
}
