// Extension experiment — per-prediction-form breakdown on FB15k-237 EQ:
// MRR for (?, r, t), (h, r, ?), and (h, ?, t) separately. The paper's
// observation 5 explains TACT's mixed Table III showing: its relation-
// correlation module makes it strong at *relation* prediction while its
// head/tail prediction lags. This bench makes that mechanism measurable in
// our reproduction (and shows DEKG-ILP is balanced across forms).
#include <cstdio>

#include "bench/experiment.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Extension: MRR per prediction form (FB15k-237 EQ, "
              "scale=%.2f)\n", config.scale);
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);
  std::printf("%-14s %12s %12s %12s\n", "Model", "head (?rt)", "tail (hr?)",
              "rel (h?t)");
  const ModelKind models[] = {ModelKind::kMean,  ModelKind::kNeuralLp,
                              ModelKind::kRuleN, ModelKind::kGrail,
                              ModelKind::kTact,  ModelKind::kDekgIlp};
  for (ModelKind kind : models) {
    ModelRun run = RunModel(kind, dataset, config);
    std::printf("%-14s %12.3f %12.3f %12.3f\n", run.name.c_str(),
                run.result.head_task.mrr, run.result.tail_task.mrr,
                run.result.relation_task.mrr);
  }
  return 0;
}
