// Extension — statistical backing for the headline comparison: a paired
// bootstrap over aligned ranking tasks tests whether DEKG-ILP's MRR
// advantage over GraIL is significant on one dataset, overall and on the
// bridging subset. Both models are evaluated under an identical EvalConfig,
// so their per-task rank lists are aligned pair-by-pair.
#include <cstdio>

#include "bench/experiment.h"
#include "baselines/grail.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"
#include "eval/significance.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Extension: paired-bootstrap significance, DEKG-ILP vs Grail "
              "(NELL-995 EQ, scale=%.2f)\n", config.scale);
  DekgDataset dataset = MakeDataset(datagen::KgFamily::kNellLike,
                                    datagen::EvalSplit::kEq, config);

  core::DekgIlpConfig ilp;
  ilp.num_relations = dataset.num_relations();
  ilp.dim = config.dim;
  ilp.num_contrastive_samples = 6;
  core::DekgIlpModel dekg_ilp(ilp, config.seed ^ 0xc1);
  core::DekgIlpModel grail(
      baselines::GrailConfig(dataset.num_relations(), config.dim),
      config.seed ^ 0xc1);
  core::TrainConfig train;
  train.epochs = config.subgraph_epochs;
  train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
  train.seed = config.seed ^ 0xc2;
  core::DekgIlpTrainer(&dekg_ilp, &dataset, train).Train();
  core::DekgIlpTrainer(&grail, &dataset, train).Train();

  EvalConfig eval;
  eval.num_entity_negatives = config.eval_negatives;
  eval.max_links = config.eval_links;
  eval.seed = config.seed ^ 0xc3;
  eval.collect_ranks = true;
  core::DekgIlpPredictor ilp_pred(&dekg_ilp);
  core::DekgIlpPredictor grail_pred(&grail);
  EvalResult a = Evaluate(&ilp_pred, dataset, eval);
  EvalResult b = Evaluate(&grail_pred, dataset, eval);

  BootstrapResult overall =
      PairedBootstrapMrr(a.ranks, b.ranks, /*resamples=*/2000, 11);
  std::printf("\noverall: MRR %.3f vs %.3f, diff 95%% CI [%.3f, %.3f], "
              "p(H0: no advantage) = %.4f\n",
              overall.mrr_a, overall.mrr_b, overall.diff_low,
              overall.diff_high, overall.p_value);
  if (overall.p_value < 0.05) {
    std::printf("DEKG-ILP's advantage is significant at the 5%% level.\n");
  } else {
    std::printf("Not significant at this sample size; raise "
                "DEKG_BENCH_LINKS.\n");
  }
  return 0;
}
