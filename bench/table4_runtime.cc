// Table IV — per-epoch training time (seconds here; the paper reports
// minutes at ~30-60x our dataset scale) and average inference time for 50
// links, for every model on the EQ / MB / ME splits of the three dataset
// families. Timing needs no converged model, so each model is timed over
// a single training epoch with its initial weights.
//
// Expected shape: subgraph methods (Grail / TACT / DEKG-ILP) are the
// slowest per epoch and per inference (subgraph extraction + GNN);
// TACT > DEKG-ILP > Grail; TransE/RotatE are the fastest; ConvE and GEN
// sit in between.
#include <cstdio>

#include "bench/experiment.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();
  // Timing-only run: one epoch per model, minimal evaluation.
  config.subgraph_epochs = 1;
  config.kge_epochs = 1;
  config.eval_links = 4;

  std::printf("Table IV: training time per epoch (T-T, seconds) and "
              "inference time per 50 links (T-I, seconds)\n");
  std::printf("scale=%.2f\n", config.scale);

  const datagen::KgFamily families[] = {datagen::KgFamily::kFbLike,
                                        datagen::KgFamily::kNellLike,
                                        datagen::KgFamily::kWnLike};
  const datagen::EvalSplit splits[] = {datagen::EvalSplit::kEq,
                                       datagen::EvalSplit::kMb,
                                       datagen::EvalSplit::kMe};

  for (datagen::KgFamily family : families) {
    std::printf("\n== %s ==\n", datagen::KgFamilyName(family));
    std::printf("%-14s", "Model");
    for (datagen::EvalSplit split : splits) {
      std::printf(" %8s-TT %8s-TI", datagen::EvalSplitName(split),
                  datagen::EvalSplitName(split));
    }
    std::printf("\n");

    // Generate the three split datasets once.
    std::vector<DekgDataset> datasets;
    for (datagen::EvalSplit split : splits) {
      datasets.push_back(MakeDataset(family, split, config));
    }
    for (ModelKind kind : TableThreeModels()) {
      std::printf("%-14s", ModelKindName(kind));
      for (const DekgDataset& dataset : datasets) {
        ModelRun run = RunModel(kind, dataset, config, /*measure_time=*/true);
        std::printf(" %11.3f %11.3f", run.train_seconds_per_epoch,
                    run.infer_seconds_per_50_links);
      }
      std::printf("\n");
    }
  }
  return 0;
}
