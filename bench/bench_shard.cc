// Sharded-serving throughput sweep (DESIGN.md §14): closed-loop clients
// sending pipelined single-triple requests over real TCP, swept over
// shard count x pipeline depth x ingest churn. Every point is gated on
// the subsystem's acceptance criterion — a whole-workload request must
// be bit-identical to offline DekgIlpPredictor::ScoreTriples on the
// statically built graph (pre-churn oracle; churn points are re-gated
// against the post-ingest oracle after the churn drains) — before its
// throughput counts; a gate failure flips the exit code.
//
// The headline number is speedup_vs_pingpong: each point's request rate
// over the 1-shard depth-1 no-churn baseline (classic ping-pong). Depth
// is what lets the micro-batcher actually pack (one connection, many
// requests in flight), shards are what fan the packed batch out.
//
// The closed loop cycles a fixed hot working set whose item seeds match
// the gate request's, so after the gate the scores are resident in the
// engines' epoch-keyed score memo: quiescent points measure the serving
// stack proper (framing, scheduling, pipelining) over hot queries, and
// churn points additionally pay the memo flush + recompute that every
// ingest epoch forces.
//
// Knobs: DEKG_BENCH_THREADS (pool size, default max(4, hw)),
// DEKG_BENCH_SHARD_CLIENTS (closed-loop clients, default 2),
// DEKG_BENCH_SHARD_ITERS (requests per client per config, default 128).
// Results land in BENCH_shard.json in the working directory.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiment.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

namespace dekg::bench {
namespace {

using serve::BatcherConfig;
using serve::Client;
using serve::IngestRequest;
using serve::IngestResponse;
using serve::MicroBatcher;
using serve::Router;
using serve::RouterConfig;
using serve::ScoreRequest;
using serve::ScoreResponse;
using serve::ScoringServer;
using serve::ServerConfig;
using serve::StatsResponse;
using serve::Status;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

struct SweepPoint {
  int shards = 1;
  size_t depth = 1;
  bool churn = false;
  bool gate_identical = false;
  double seconds = 0.0;
  double requests_per_s = 0.0;
  double speedup_vs_pingpong = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  uint64_t batches_scored = 0;
  uint64_t epoch = 0;
};

// Whole workload in one frame, default seed 123 — the offline
// predictor's stream. Must match `oracle` bit for bit.
bool GateAgainst(Client* client, const std::vector<Triple>& triples,
                 const std::vector<double>& oracle) {
  ScoreRequest request;
  request.triples = triples;
  ScoreResponse response;
  std::string error;
  return client->Score(request, &response, &error) &&
         response.status == Status::kOk && response.scores == oracle;
}

// One configuration: fresh router/batcher/server. Churn points start
// from the train-only graph and ingest the emerging triples chunk by
// chunk while the closed loop runs, then re-gate on the post-ingest
// oracle; quiescent points serve the full inference graph throughout.
SweepPoint RunPoint(core::DekgIlpModel* model, const DekgDataset& dataset,
                    const std::vector<Triple>& triples,
                    const std::vector<double>& oracle_base,
                    const std::vector<double>& oracle_full, int shards,
                    size_t depth, bool churn, int clients, int iters) {
  SweepPoint point;
  point.shards = shards;
  point.depth = depth;
  point.churn = churn;

  RouterConfig router_config;
  router_config.num_shards = shards;
  Router router(model,
                churn ? dataset.original_graph() : dataset.inference_graph(),
                router_config);
  MicroBatcher batcher(&router, BatcherConfig{});
  ScoringServer server(&batcher, ServerConfig{});  // ephemeral port
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return point;
  }

  {
    Client gate;
    point.gate_identical =
        gate.Connect("127.0.0.1", server.port(), &error) &&
        GateAgainst(&gate, triples, churn ? oracle_base : oracle_full);

    if (point.gate_identical) {
      std::atomic<bool> churn_failed{false};
      Timer timer;
      std::vector<std::thread> workers;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          Client client;
          std::string client_error;
          if (!client.Connect("127.0.0.1", server.port(), &client_error)) {
            return;
          }
          // The whole closed loop as one pipelined exchange: up to
          // `depth` single-triple requests in flight on one connection.
          std::vector<ScoreRequest> requests(static_cast<size_t>(iters));
          for (int i = 0; i < iters; ++i) {
            const size_t index =
                static_cast<size_t>(c * iters + i) % triples.size();
            requests[static_cast<size_t>(i)].request_id =
                static_cast<uint64_t>(i) + 1;
            requests[static_cast<size_t>(i)].seed = 123;
            requests[static_cast<size_t>(i)].index_offset = index;
            requests[static_cast<size_t>(i)].triples = {triples[index]};
          }
          std::vector<ScoreResponse> responses;
          client.ScorePipelined(requests, depth, &responses, &client_error);
        });
      }
      std::thread churn_thread;
      if (churn) {
        churn_thread = std::thread([&] {
          Client writer;
          std::string churn_error;
          if (!writer.Connect("127.0.0.1", server.port(), &churn_error)) {
            churn_failed.store(true);
            return;
          }
          const std::vector<Triple>& emerging = dataset.emerging_triples();
          const size_t num_chunks = 8;
          const size_t chunk = (emerging.size() + num_chunks - 1) / num_chunks;
          for (size_t begin = 0; begin < emerging.size(); begin += chunk) {
            const size_t end = std::min(emerging.size(), begin + chunk);
            IngestRequest request;
            request.triples.assign(
                emerging.begin() + static_cast<int64_t>(begin),
                emerging.begin() + static_cast<int64_t>(end));
            IngestResponse response;
            if (!writer.Ingest(request, &response, &churn_error) ||
                response.status != Status::kOk) {
              churn_failed.store(true);
              return;
            }
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      if (churn_thread.joinable()) churn_thread.join();
      point.seconds = timer.ElapsedSeconds();
      const double total =
          static_cast<double>(clients) * static_cast<double>(iters);
      point.requests_per_s =
          point.seconds > 0.0 ? total / point.seconds : 0.0;

      if (churn) {
        // Post-churn the live graph equals the full inference graph;
        // the same request must now produce the post-ingest oracle.
        point.gate_identical = !churn_failed.load() &&
                               GateAgainst(&gate, triples, oracle_full);
      }

      StatsResponse stats;
      if (gate.Stats(&stats, &error)) {
        point.latency_p50_ms = stats.latency_p50_ms;
        point.latency_p99_ms = stats.latency_p99_ms;
        point.batches_scored = stats.batches_scored;
        point.epoch = stats.epoch;
      }
    }
  }

  server.RequestStop();
  server.Wait();
  return point;
}

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads =
      std::max(4, EnvInt("DEKG_BENCH_THREADS",
                         static_cast<int>(std::thread::hardware_concurrency())));
  const int clients = EnvInt("DEKG_BENCH_SHARD_CLIENTS", 2);
  const int iters = EnvInt("DEKG_BENCH_SHARD_ITERS", 128);
  SetDefaultThreadCount(threads);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  core::DekgIlpConfig model_config;
  model_config.num_relations = dataset.num_relations();
  model_config.dim = 16;
  core::DekgIlpModel model(model_config, /*seed=*/1);

  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    triples.push_back(link.triple);
    if (triples.size() >= 48) break;
  }
  core::DekgIlpPredictor predictor(&model);
  const std::vector<double> oracle_base =
      predictor.ScoreTriples(dataset.original_graph(), triples);
  const std::vector<double> oracle_full =
      predictor.ScoreTriples(dataset.inference_graph(), triples);

  std::printf(
      "bench_shard: %d closed-loop clients x %d pipelined requests, "
      "%zu-triple workload, %d pool threads\n",
      clients, iters, triples.size(), threads);

  std::vector<SweepPoint> points;
  for (int shards : {1, 2, 4}) {
    for (size_t depth : {size_t{1}, size_t{8}, size_t{32}}) {
      for (bool churn : {false, true}) {
        points.push_back(RunPoint(&model, dataset, triples, oracle_base,
                                  oracle_full, shards, depth, churn, clients,
                                  iters));
      }
    }
  }

  // Baseline: 1 shard, depth 1, quiescent — classic ping-pong.
  double baseline = 0.0;
  for (const SweepPoint& p : points) {
    if (p.shards == 1 && p.depth == 1 && !p.churn) baseline = p.requests_per_s;
  }
  for (SweepPoint& p : points) {
    p.speedup_vs_pingpong =
        baseline > 0.0 ? p.requests_per_s / baseline : 0.0;
  }

  std::printf("\n%7s %6s %6s %6s %12s %9s %10s %10s %7s\n", "shards", "depth",
              "churn", "gate", "requests/s", "speedup", "p50(ms)", "p99(ms)",
              "epoch");
  for (const SweepPoint& p : points) {
    std::printf("%7d %6zu %6s %6s %12.1f %8.2fx %10.3f %10.3f %7llu\n",
                p.shards, p.depth, p.churn ? "on" : "off",
                p.gate_identical ? "ok" : "FAIL", p.requests_per_s,
                p.speedup_vs_pingpong, p.latency_p50_ms, p.latency_p99_ms,
                static_cast<unsigned long long>(p.epoch));
  }

  std::FILE* json = std::fopen("BENCH_shard.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"clients\": %d,\n  \"iters_per_client\": %d,\n"
               "  \"workload_triples\": %zu,\n  \"sweep\": [",
               clients, iters, triples.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(json,
                 "%s\n    {\n"
                 "      \"shards\": %d,\n"
                 "      \"pipeline_depth\": %zu,\n"
                 "      \"churn\": %s,\n"
                 "      \"gate_identical\": %s,\n"
                 "      \"seconds\": %.6f,\n"
                 "      \"requests_per_s\": %.1f,\n"
                 "      \"speedup_vs_pingpong\": %.3f,\n"
                 "      \"latency_p50_ms\": %.3f,\n"
                 "      \"latency_p99_ms\": %.3f,\n"
                 "      \"batches_scored\": %llu,\n"
                 "      \"epoch\": %llu\n    }",
                 i == 0 ? "" : ",", p.shards, p.depth,
                 p.churn ? "true" : "false",
                 p.gate_identical ? "true" : "false", p.seconds,
                 p.requests_per_s, p.speedup_vs_pingpong, p.latency_p50_ms,
                 p.latency_p99_ms,
                 static_cast<unsigned long long>(p.batches_scored),
                 static_cast<unsigned long long>(p.epoch));
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_shard.json\n");

  // Throughput depends on the machine; only the bitwise gates are hard
  // requirements.
  for (const SweepPoint& p : points) {
    if (!p.gate_identical) return 1;
  }
  return 0;
}
