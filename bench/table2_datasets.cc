// Table II — dataset statistics: |R|, |E|, |T| of the original KG G and the
// DEKG G' for the EQ / MB / ME variants of the three dataset families,
// plus the enclosing : bridging composition of each evaluation set.
#include <cstdio>
#include <string>

#include "bench/experiment.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Table II: dataset statistics (scale=%.2f)\n", config.scale);
  std::printf("%-22s %6s %6s %7s | %6s %6s %7s | %6s %6s\n", "Dataset",
              "|R|G", "|E|G", "|T|G", "|R|G'", "|E|G'", "|T|G'", "#enc",
              "#bri");

  const datagen::KgFamily families[] = {datagen::KgFamily::kFbLike,
                                        datagen::KgFamily::kNellLike,
                                        datagen::KgFamily::kWnLike};
  const datagen::EvalSplit splits[] = {datagen::EvalSplit::kEq,
                                       datagen::EvalSplit::kMb,
                                       datagen::EvalSplit::kMe};
  for (datagen::KgFamily family : families) {
    for (datagen::EvalSplit split : splits) {
      DekgDataset d = MakeDataset(family, split, config);

      // Relations / entities actually used on each side of the cut.
      std::vector<bool> rel_g(static_cast<size_t>(d.num_relations()), false);
      std::vector<bool> rel_gp(static_cast<size_t>(d.num_relations()), false);
      std::vector<bool> ent_g(static_cast<size_t>(d.num_total_entities()), false);
      std::vector<bool> ent_gp(static_cast<size_t>(d.num_total_entities()), false);
      for (const Triple& t : d.train_triples()) {
        rel_g[static_cast<size_t>(t.rel)] = true;
        ent_g[static_cast<size_t>(t.head)] = true;
        ent_g[static_cast<size_t>(t.tail)] = true;
      }
      for (const Triple& t : d.emerging_triples()) {
        rel_gp[static_cast<size_t>(t.rel)] = true;
        ent_gp[static_cast<size_t>(t.head)] = true;
        ent_gp[static_cast<size_t>(t.tail)] = true;
      }
      auto count = [](const std::vector<bool>& v) {
        int64_t n = 0;
        for (bool b : v) n += b ? 1 : 0;
        return n;
      };
      int64_t enc = 0, bri = 0;
      for (const LabeledLink& l : d.test_links()) {
        (l.kind == LinkKind::kEnclosing ? enc : bri) += 1;
      }
      std::printf("%-22s %6lld %6lld %7zu | %6lld %6lld %7zu | %6lld %6lld\n",
                  d.name().c_str(), static_cast<long long>(count(rel_g)),
                  static_cast<long long>(count(ent_g)),
                  d.train_triples().size(),
                  static_cast<long long>(count(rel_gp)),
                  static_cast<long long>(count(ent_gp)),
                  d.emerging_triples().size(), static_cast<long long>(enc),
                  static_cast<long long>(bri));
    }
  }
  std::printf("\nEvaluation mixes: EQ = 1:1, MB = 1:2, ME = 2:1 "
              "(enclosing : bridging), as in the paper.\n");
  return 0;
}
