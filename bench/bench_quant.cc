// Quantized-serving sweep (DESIGN.md §15): one standalone engine per
// storage precision {fp32, fp16, int8} over the same scoring workload,
// measuring the frozen-model footprint (fusion rows + R-GCN dense
// transforms, the EngineStats protocol-v4 accounting), hot scoring
// throughput, and the accuracy deltas against the offline fp32 oracle.
//
// Gates (exit 1 on violation):
//  * fp32 must be BITWISE identical to DekgIlpPredictor over the whole
//    workload — the precision knob must not move the exact mode.
//  * int8 must cut the frozen-model footprint >= 3x (the reduction the
//    mode exists for; fp16 is exactly 2x by construction).
//  * Each quantized mode must be run-to-run bit-deterministic (two
//    passes over the workload agree exactly).
// Accuracy deltas and throughput are reported, not gated — the rank-
// metric epsilon gate lives in tests/quant_gate_test.cc.
//
// Knobs: DEKG_BENCH_THREADS (pool size, default 4),
// DEKG_BENCH_QUANT_ITERS (timed passes per precision, default 24).
// Results land in BENCH_quant.json in the working directory.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/experiment.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dekg_ilp.h"
#include "serve/engine.h"

namespace dekg::bench {
namespace {

using serve::EngineConfig;
using serve::EngineStats;
using serve::InferenceEngine;
using serve::ScoreItem;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

struct PrecisionPoint {
  quant::Precision precision = quant::Precision::kFp32;
  uint64_t frozen_row_bytes = 0;
  uint64_t frozen_weight_bytes = 0;
  double footprint_reduction = 1.0;  // vs fp32, whole frozen model
  double seconds = 0.0;
  double triples_per_s = 0.0;
  double max_abs_delta = 0.0;   // vs the offline fp32 oracle
  double mean_abs_delta = 0.0;
  bool fp32_bitwise = false;    // fp32 row only
  bool deterministic = false;   // two passes agree bit for bit
};

}  // namespace
}  // namespace dekg::bench

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);

  const int threads = EnvInt("DEKG_BENCH_THREADS", 4);
  const int iters = EnvInt("DEKG_BENCH_QUANT_ITERS", 24);
  SetDefaultThreadCount(threads);

  ExperimentConfig config = ExperimentConfig::FromEnv();
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  core::DekgIlpConfig model_config;
  model_config.num_relations = dataset.num_relations();
  model_config.dim = config.dim;  // serving dim (default 32)
  core::DekgIlpModel model(model_config, /*seed=*/1);

  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    triples.push_back(link.triple);
    if (triples.size() >= 48) break;
  }
  std::vector<ScoreItem> items;
  for (size_t i = 0; i < triples.size(); ++i) {
    items.push_back({triples[i], MixSeed(123, i)});
  }

  // Offline fp32 oracle: the scores every precision is measured against.
  core::DekgIlpPredictor predictor(&model);
  const std::vector<double> oracle =
      predictor.ScoreTriples(dataset.inference_graph(), triples);

  std::printf(
      "bench_quant: %zu-triple workload, dim %d, %d timed passes, "
      "%d pool threads\n",
      triples.size(), model_config.dim, iters, threads);

  std::vector<PrecisionPoint> points;
  uint64_t fp32_footprint = 0;
  for (quant::Precision precision :
       {quant::Precision::kFp32, quant::Precision::kFp16,
        quant::Precision::kInt8}) {
    PrecisionPoint point;
    point.precision = precision;

    EngineConfig engine_config;
    engine_config.precision = precision;
    // Memo off: the timed loop must exercise the scoring pipeline, not
    // replay stored doubles.
    engine_config.score_memo_capacity = 0;
    InferenceEngine engine(&model, dataset.inference_graph(), engine_config);

    const EngineStats stats = engine.Stats();
    point.frozen_row_bytes = stats.frozen_row_bytes;
    point.frozen_weight_bytes = stats.frozen_weight_bytes;
    const uint64_t footprint =
        stats.frozen_row_bytes + stats.frozen_weight_bytes;
    if (precision == quant::Precision::kFp32) fp32_footprint = footprint;
    point.footprint_reduction =
        footprint > 0 ? static_cast<double>(fp32_footprint) /
                            static_cast<double>(footprint)
                      : 0.0;

    // Accuracy + determinism on the cold pass pair, then a warm timed
    // loop (subgraph cache resident — the hot serving regime).
    const std::vector<double> first = engine.ScoreBatch(items);
    const std::vector<double> second = engine.ScoreBatch(items);
    point.deterministic = first == second;
    double sum_abs = 0.0;
    for (size_t i = 0; i < first.size(); ++i) {
      const double delta = std::fabs(first[i] - oracle[i]);
      point.max_abs_delta = std::max(point.max_abs_delta, delta);
      sum_abs += delta;
    }
    point.mean_abs_delta =
        first.empty() ? 0.0 : sum_abs / static_cast<double>(first.size());
    point.fp32_bitwise = first == oracle;

    Timer timer;
    for (int it = 0; it < iters; ++it) {
      const std::vector<double> scores = engine.ScoreBatch(items);
      if (scores != first) point.deterministic = false;
    }
    point.seconds = timer.ElapsedSeconds();
    point.triples_per_s =
        point.seconds > 0.0
            ? static_cast<double>(iters) * static_cast<double>(items.size()) /
                  point.seconds
            : 0.0;
    points.push_back(point);
  }

  std::printf("\n%6s %14s %14s %10s %12s %12s %12s %6s %6s\n", "prec",
              "row_bytes", "weight_bytes", "reduce", "triples/s",
              "max_delta", "mean_delta", "exact", "det");
  for (const PrecisionPoint& p : points) {
    const bool is_fp32 = p.precision == quant::Precision::kFp32;
    std::printf("%6s %14llu %14llu %9.2fx %12.1f %12.3g %12.3g %6s %6s\n",
                quant::PrecisionName(p.precision),
                static_cast<unsigned long long>(p.frozen_row_bytes),
                static_cast<unsigned long long>(p.frozen_weight_bytes),
                p.footprint_reduction, p.triples_per_s, p.max_abs_delta,
                p.mean_abs_delta,
                is_fp32 ? (p.fp32_bitwise ? "ok" : "FAIL") : "-",
                p.deterministic ? "ok" : "FAIL");
  }

  std::FILE* json = std::fopen("BENCH_quant.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_quant.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"workload_triples\": %zu,\n  \"dim\": %d,\n"
               "  \"iters\": %d,\n  \"precisions\": [",
               triples.size(), model_config.dim, iters);
  for (size_t i = 0; i < points.size(); ++i) {
    const PrecisionPoint& p = points[i];
    std::fprintf(json,
                 "%s\n    {\n"
                 "      \"precision\": \"%s\",\n"
                 "      \"frozen_row_bytes\": %llu,\n"
                 "      \"frozen_weight_bytes\": %llu,\n"
                 "      \"footprint_reduction_vs_fp32\": %.3f,\n"
                 "      \"seconds\": %.6f,\n"
                 "      \"triples_per_s\": %.1f,\n"
                 "      \"max_abs_delta\": %.9g,\n"
                 "      \"mean_abs_delta\": %.9g,\n"
                 "      \"fp32_bitwise\": %s,\n"
                 "      \"deterministic\": %s\n    }",
                 i == 0 ? "" : ",", quant::PrecisionName(p.precision),
                 static_cast<unsigned long long>(p.frozen_row_bytes),
                 static_cast<unsigned long long>(p.frozen_weight_bytes),
                 p.footprint_reduction, p.seconds, p.triples_per_s,
                 p.max_abs_delta, p.mean_abs_delta,
                 p.fp32_bitwise ? "true" : "false",
                 p.deterministic ? "true" : "false");
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_quant.json\n");

  // Hard gates: fp32 bitwise, int8 footprint >= 3x, every mode
  // bit-deterministic.
  int failures = 0;
  for (const PrecisionPoint& p : points) {
    if (p.precision == quant::Precision::kFp32 && !p.fp32_bitwise) {
      std::fprintf(stderr, "FAIL: fp32 engine diverged from the offline "
                           "predictor\n");
      ++failures;
    }
    if (p.precision == quant::Precision::kInt8 &&
        p.footprint_reduction < 3.0) {
      std::fprintf(stderr,
                   "FAIL: int8 footprint reduction %.2fx < 3x\n",
                   p.footprint_reduction);
      ++failures;
    }
    if (!p.deterministic) {
      std::fprintf(stderr, "FAIL: %s scoring not run-to-run deterministic\n",
                   quant::PrecisionName(p.precision));
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
