// Extension — evaluation-protocol sensitivity: how the candidate-pool size
// affects reported metrics. The paper ranks against every entity; this
// repository (like GraIL's own protocol) ranks against K sampled filtered
// candidates. This bench quantifies that substitution by sweeping K on one
// dataset with one trained DEKG-ILP model: Hits@10 inflates as K shrinks,
// MRR is more stable, and *model orderings* (DEKG-ILP vs Grail gap) are
// preserved at every K — the justification recorded in EXPERIMENTS.md.
#include <cstdio>

#include "bench/experiment.h"
#include "baselines/grail.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"

int main() {
  using namespace dekg;
  using namespace dekg::bench;
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Extension: candidate-pool sensitivity (FB15k-237 EQ, "
              "scale=%.2f)\n", config.scale);
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);

  // Train both models once.
  core::DekgIlpConfig ilp;
  ilp.num_relations = dataset.num_relations();
  ilp.dim = config.dim;
  ilp.num_contrastive_samples = 6;
  core::DekgIlpModel dekg_ilp(ilp, config.seed ^ 0xb1);
  core::DekgIlpModel grail(
      baselines::GrailConfig(dataset.num_relations(), config.dim),
      config.seed ^ 0xb1);
  core::TrainConfig train;
  train.epochs = config.subgraph_epochs;
  train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
  train.seed = config.seed ^ 0xb2;
  core::DekgIlpTrainer(&dekg_ilp, &dataset, train).Train();
  core::DekgIlpTrainer(&grail, &dataset, train).Train();
  core::DekgIlpPredictor ilp_pred(&dekg_ilp);
  core::DekgIlpPredictor grail_pred(&grail);

  std::printf("%-6s | %8s %8s | %8s %8s | %10s\n", "K", "ILP-MRR", "ILP-H10",
              "Gr-MRR", "Gr-H10", "MRR gap");
  for (int32_t k : {9, 24, 49, 99, 199}) {
    EvalConfig eval;
    eval.num_entity_negatives = k;
    eval.max_links = config.eval_links;
    eval.seed = config.seed ^ 0xb3;
    EvalResult a = Evaluate(&ilp_pred, dataset, eval);
    EvalResult b = Evaluate(&grail_pred, dataset, eval);
    std::printf("%-6d | %8.3f %8.3f | %8.3f %8.3f | %+10.3f\n", k,
                a.overall.mrr, a.overall.hits_at_10, b.overall.mrr,
                b.overall.hits_at_10, a.overall.mrr - b.overall.mrr);
  }
  return 0;
}
