// Fig. 7 — complexity study on FB15k-237 ME: trainable-parameter counts
// and average inference time for 50 links, per model. Inference timing
// uses google-benchmark (training is irrelevant to cost, so models are
// timed with their initial weights).
//
// Expected shape: the entity-identity KGE methods (TransE/RotatE/ConvE/
// GEN) carry far more parameters (a row per entity); the subgraph methods
// (Grail/TACT/DEKG-ILP) are relation-parameterized but pay subgraph
// extraction + GNN time at inference; TACT adds the |R|^2 correlation
// matrices; DEKG-ILP sits slightly above Grail in both axes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "baselines/gen.h"
#include "baselines/grail.h"
#include "baselines/kge_models.h"
#include "baselines/rulen.h"
#include "baselines/tact.h"
#include "bench/experiment.h"
#include "core/dekg_ilp.h"

namespace {

using namespace dekg;
using namespace dekg::bench;

struct Fixture {
  std::unique_ptr<DekgDataset> dataset;
  std::vector<Triple> batch50;

  std::unique_ptr<baselines::TransE> transe;
  std::unique_ptr<baselines::RotatE> rotate;
  std::unique_ptr<baselines::ConvE> conve;
  std::unique_ptr<baselines::Gen> gen;
  std::unique_ptr<baselines::RuleN> rulen;
  std::unique_ptr<core::DekgIlpModel> grail;
  std::unique_ptr<core::DekgIlpPredictor> grail_pred;
  std::unique_ptr<baselines::Tact> tact;
  std::unique_ptr<core::DekgIlpModel> dekg_ilp;
  std::unique_ptr<core::DekgIlpPredictor> dekg_ilp_pred;
};

Fixture* g_fixture = nullptr;

void BuildFixture() {
  auto* f = new Fixture();
  ExperimentConfig config = ExperimentConfig::FromEnv();
  f->dataset = std::make_unique<DekgDataset>(
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kMe, config));
  const DekgDataset& d = *f->dataset;
  for (int i = 0; i < 50; ++i) {
    f->batch50.push_back(
        d.test_links()[static_cast<size_t>(i) % d.test_links().size()].triple);
  }
  baselines::KgeConfig kge;
  kge.num_entities = d.num_total_entities();
  kge.num_relations = d.num_relations();
  kge.dim = config.dim;
  f->transe = std::make_unique<baselines::TransE>(kge);
  f->rotate = std::make_unique<baselines::RotatE>(kge);
  f->conve = std::make_unique<baselines::ConvE>(kge);
  f->gen = std::make_unique<baselines::Gen>(kge);
  f->gen->SetEmergingRange(d.num_original_entities(), d.num_total_entities());
  f->rulen = std::make_unique<baselines::RuleN>(baselines::RulenConfig{});
  f->rulen->Mine(d);
  f->grail = std::make_unique<core::DekgIlpModel>(
      baselines::GrailConfig(d.num_relations(), config.dim), 3);
  f->grail_pred = std::make_unique<core::DekgIlpPredictor>(f->grail.get());
  baselines::TactConfig tact;
  tact.num_relations = d.num_relations();
  tact.dim = config.dim;
  f->tact = std::make_unique<baselines::Tact>(tact, 4);
  core::DekgIlpConfig ilp;
  ilp.num_relations = d.num_relations();
  ilp.dim = config.dim;
  f->dekg_ilp = std::make_unique<core::DekgIlpModel>(ilp, 5);
  f->dekg_ilp_pred =
      std::make_unique<core::DekgIlpPredictor>(f->dekg_ilp.get());
  g_fixture = f;
}

void BenchScore(benchmark::State& state, LinkPredictor* predictor) {
  const Fixture& f = *g_fixture;
  for (auto _ : state) {
    auto scores =
        predictor->ScoreTriples(f.dataset->inference_graph(), f.batch50);
    benchmark::DoNotOptimize(scores);
  }
  state.counters["params"] =
      static_cast<double>(predictor->ParameterCount());
}

}  // namespace

int main(int argc, char** argv) {
  SetMinLogSeverity(LogSeverity::kWarning);
  std::printf("Fig. 7: parameter and inference-time complexity "
              "(FB15k-237 ME)\n");
  BuildFixture();
  const Fixture& f = *g_fixture;

  std::printf("%-14s %12s\n", "Model", "#params");
  std::printf("%-14s %12lld\n", "TransE",
              static_cast<long long>(f.transe->ParameterCount()));
  std::printf("%-14s %12lld\n", "RotatE",
              static_cast<long long>(f.rotate->ParameterCount()));
  std::printf("%-14s %12lld\n", "ConvE",
              static_cast<long long>(f.conve->ParameterCount()));
  std::printf("%-14s %12lld\n", "GEN",
              static_cast<long long>(f.gen->ParameterCount()));
  std::printf("%-14s %12lld\n", "RuleN",
              static_cast<long long>(f.rulen->ParameterCount()));
  std::printf("%-14s %12lld\n", "Grail",
              static_cast<long long>(f.grail->ParameterCount()));
  std::printf("%-14s %12lld\n", "TACT",
              static_cast<long long>(f.tact->ParameterCount()));
  std::printf("%-14s %12lld\n", "DEKG-ILP",
              static_cast<long long>(f.dekg_ilp->ParameterCount()));
  std::printf("\nInference time for 50 links (google-benchmark):\n");

  benchmark::RegisterBenchmark("infer50/TransE", BenchScore, f.transe.get());
  benchmark::RegisterBenchmark("infer50/RotatE", BenchScore, f.rotate.get());
  benchmark::RegisterBenchmark("infer50/ConvE", BenchScore, f.conve.get());
  benchmark::RegisterBenchmark("infer50/GEN", BenchScore, f.gen.get());
  benchmark::RegisterBenchmark("infer50/RuleN", BenchScore, f.rulen.get());
  benchmark::RegisterBenchmark("infer50/Grail", BenchScore,
                               f.grail_pred.get());
  benchmark::RegisterBenchmark("infer50/TACT", BenchScore, f.tact.get());
  benchmark::RegisterBenchmark("infer50/DEKG-ILP", BenchScore,
                               f.dekg_ilp_pred.get());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
