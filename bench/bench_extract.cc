// Extraction scaling benchmark (DESIGN.md §16): per-call cost of the
// output-sensitive sparse extraction path vs the retained dense reference
// (ExtractSubgraphDense), swept over graph size {1e4, 1e5, 1e6} entities
// × hops {1, 2, 3} on low-skew datagen worlds whose ~4-degree keeps the
// 2-hop ball roughly constant as the graph grows — so per-extraction cost
// should be flat where the dense path grows linearly in num_entities.
//
// Gates (exit code 1 on failure):
//  * bitwise — at EVERY sweep point, every probe subgraph from the sparse
//    path must equal the dense reference field-for-field;
//  * speedup — sparse must be ≥5× faster per extraction at hops=2 for
//    every graph of ≥1e5 entities;
//  * sublinear — sparse per-extraction time at hops=2 may grow at most
//    (Nmax/Nmin)/4 going from the smallest to the largest graph (a
//    linear-cost path would grow by the full Nmax/Nmin).
//
// Knobs: DEKG_BENCH_EXTRACT_PROBES (target links per point, default 64),
// DEKG_BENCH_EXTRACT_REPS (sparse timing repetitions, default 16),
// DEKG_BENCH_EXTRACT_MAX_N (trim the entity sweep, default 1000000).
// Results land in BENCH_extract.json in the working directory.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "datagen/synthetic_kg.h"
#include "graph/subgraph.h"
#include "kg/knowledge_graph.h"

namespace dekg::bench {
namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

bool SameSubgraph(const Subgraph& a, const Subgraph& b) {
  if (a.nodes.size() != b.nodes.size()) return false;
  if (a.edges.size() != b.edges.size()) return false;
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    if (a.nodes[i].entity != b.nodes[i].entity ||
        a.nodes[i].dist_head != b.nodes[i].dist_head ||
        a.nodes[i].dist_tail != b.nodes[i].dist_tail) {
      return false;
    }
  }
  for (size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].src != b.edges[i].src ||
        a.edges[i].rel != b.edges[i].rel ||
        a.edges[i].dst != b.edges[i].dst) {
      return false;
    }
  }
  return true;
}

struct SweepPoint {
  int64_t num_entities = 0;
  int64_t num_triples = 0;
  int hops = 0;
  int probes = 0;
  bool bitwise_identical = false;
  double sparse_us = 0.0;  // per extraction
  double dense_us = 0.0;   // per extraction
  double speedup = 0.0;
  double mean_nodes = 0.0;
  double mean_edges = 0.0;
  double mean_bfs_popped = 0.0;
  double mean_candidates = 0.0;
};

struct World {
  KnowledgeGraph graph{0, 0};
  std::vector<Triple> probes;
};

World MakeWorld(int32_t num_entities, int num_probes) {
  datagen::SchemaConfig schema;
  schema.num_types = 6;
  schema.num_relations = 24;
  schema.num_entities = num_entities;
  schema.avg_degree = 4.0;
  schema.num_rules = 8;
  schema.rule_apply_prob = 0.3;
  schema.type_noise = 0.05;
  // Low skew keeps hub degrees — and with them t-hop ball sizes — roughly
  // flat across the entity sweep, which is what makes the sublinearity
  // gate meaningful: subgraph size stays fixed while the graph grows.
  schema.popularity_skew = 0.2;
  Rng rng(0x5eedc0de ^ static_cast<uint64_t>(num_entities));
  datagen::GeneratedKg kg = datagen::GenerateKg(schema, &rng);

  World world;
  world.graph = BuildGraph(kg.num_entities, kg.num_relations, kg.triples);
  DEKG_CHECK(!kg.triples.empty());
  const size_t stride =
      std::max<size_t>(1, kg.triples.size() / static_cast<size_t>(num_probes));
  for (size_t i = 0; i < kg.triples.size() &&
                     world.probes.size() < static_cast<size_t>(num_probes);
       i += stride) {
    world.probes.push_back(kg.triples[i]);
  }
  return world;
}

SweepPoint RunPoint(const World& world, int hops, int reps) {
  SweepPoint pt;
  pt.num_entities = world.graph.num_entities();
  pt.num_triples = world.graph.num_triples();
  pt.hops = hops;
  pt.probes = static_cast<int>(world.probes.size());

  SubgraphConfig config;
  config.num_hops = hops;
  config.max_nodes = 256;
  config.labeling = NodeLabeling::kImproved;

  SubgraphWorkspace workspace;

  // Correctness pass (untimed): sparse vs dense at every probe, plus the
  // per-extraction size/counter means for the report.
  ResetExtractionCounters();
  pt.bitwise_identical = true;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  for (const Triple& t : world.probes) {
    Subgraph sparse = ExtractSubgraph(world.graph, t.head, t.tail, t.rel,
                                      config, &workspace);
    Subgraph dense =
        ExtractSubgraphDense(world.graph, t.head, t.tail, t.rel, config);
    if (!SameSubgraph(sparse, dense)) pt.bitwise_identical = false;
    nodes += sparse.nodes.size();
    edges += sparse.edges.size();
  }
  const ExtractionCounters counters = GetExtractionCounters();
  const double n_probes = static_cast<double>(world.probes.size());
  pt.mean_nodes = static_cast<double>(nodes) / n_probes;
  pt.mean_edges = static_cast<double>(edges) / n_probes;
  pt.mean_bfs_popped =
      static_cast<double>(counters.bfs_popped) / n_probes;
  pt.mean_candidates =
      static_cast<double>(counters.candidates_kept) / n_probes;

  // Timed passes. The sparse path reuses one workspace, exactly like the
  // hot paths (trainer prefill, evaluator, serving misses) do.
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (const Triple& t : world.probes) {
      Subgraph s = ExtractSubgraph(world.graph, t.head, t.tail, t.rel,
                                   config, &workspace);
      nodes += s.nodes.size();  // keep the extraction observable
    }
  }
  pt.sparse_us = timer.ElapsedMicros() / (n_probes * reps);

  const int dense_reps = std::max(1, reps / 8);
  timer.Restart();
  for (int r = 0; r < dense_reps; ++r) {
    for (const Triple& t : world.probes) {
      Subgraph s =
          ExtractSubgraphDense(world.graph, t.head, t.tail, t.rel, config);
      nodes += s.nodes.size();
    }
  }
  pt.dense_us = timer.ElapsedMicros() / (n_probes * dense_reps);
  pt.speedup = pt.sparse_us > 0.0 ? pt.dense_us / pt.sparse_us : 0.0;
  return pt;
}

int Main() {
  const int probes = EnvInt("DEKG_BENCH_EXTRACT_PROBES", 64);
  const int reps = EnvInt("DEKG_BENCH_EXTRACT_REPS", 16);
  const int64_t max_n =
      static_cast<int64_t>(EnvInt("DEKG_BENCH_EXTRACT_MAX_N", 1000000));

  std::vector<int32_t> entity_sweep;
  for (int32_t n : {10000, 100000, 1000000}) {
    if (n <= max_n) entity_sweep.push_back(n);
  }
  DEKG_CHECK(!entity_sweep.empty());
  const std::vector<int> hops_sweep = {1, 2, 3};

  std::vector<SweepPoint> points;
  for (int32_t n : entity_sweep) {
    Timer build_timer;
    World world = MakeWorld(n, probes);
    std::printf("[world] entities=%d triples=%lld build=%.1fms\n", n,
                static_cast<long long>(world.graph.num_triples()),
                build_timer.ElapsedMillis());
    for (int hops : hops_sweep) {
      SweepPoint pt = RunPoint(world, hops, reps);
      std::printf(
          "[point] n=%lld hops=%d sparse=%.2fus dense=%.2fus speedup=%.1fx "
          "nodes=%.1f popped=%.1f bitwise=%s\n",
          static_cast<long long>(pt.num_entities), pt.hops, pt.sparse_us,
          pt.dense_us, pt.speedup, pt.mean_nodes, pt.mean_bfs_popped,
          pt.bitwise_identical ? "yes" : "NO");
      points.push_back(pt);
    }
  }

  // Gates.
  bool gate_bitwise = true;
  bool gate_speedup = true;
  for (const SweepPoint& pt : points) {
    if (!pt.bitwise_identical) gate_bitwise = false;
    if (pt.hops == 2 && pt.num_entities >= 100000 && pt.speedup < 5.0) {
      gate_speedup = false;
    }
  }
  double scaling_ratio = 0.0;
  double scaling_limit = 0.0;
  bool gate_sublinear = true;
  {
    const SweepPoint* lo = nullptr;
    const SweepPoint* hi = nullptr;
    for (const SweepPoint& pt : points) {
      if (pt.hops != 2) continue;
      if (lo == nullptr || pt.num_entities < lo->num_entities) lo = &pt;
      if (hi == nullptr || pt.num_entities > hi->num_entities) hi = &pt;
    }
    if (lo != nullptr && hi != nullptr && hi->num_entities > lo->num_entities) {
      scaling_ratio = hi->sparse_us / lo->sparse_us;
      scaling_limit = static_cast<double>(hi->num_entities) /
                      static_cast<double>(lo->num_entities) / 4.0;
      gate_sublinear = scaling_ratio <= scaling_limit;
    }
  }

  std::FILE* json = std::fopen("BENCH_extract.json", "w");
  DEKG_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"bench\": \"extract\",\n  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    std::fprintf(
        json,
        "    {\"num_entities\": %lld, \"num_triples\": %lld, \"hops\": %d, "
        "\"probes\": %d, \"sparse_us\": %.3f, \"dense_us\": %.3f, "
        "\"speedup\": %.2f, \"mean_nodes\": %.1f, \"mean_edges\": %.1f, "
        "\"mean_bfs_popped\": %.1f, \"mean_candidates\": %.1f, "
        "\"bitwise_identical\": %s}%s\n",
        static_cast<long long>(pt.num_entities),
        static_cast<long long>(pt.num_triples), pt.hops, pt.probes,
        pt.sparse_us, pt.dense_us, pt.speedup, pt.mean_nodes, pt.mean_edges,
        pt.mean_bfs_popped, pt.mean_candidates,
        pt.bitwise_identical ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"scaling_ratio_hops2\": %.2f,\n"
               "  \"scaling_limit_hops2\": %.2f,\n",
               scaling_ratio, scaling_limit);
  std::fprintf(json,
               "  \"gate_bitwise\": %s,\n  \"gate_speedup\": %s,\n"
               "  \"gate_sublinear\": %s\n}\n",
               gate_bitwise ? "true" : "false",
               gate_speedup ? "true" : "false",
               gate_sublinear ? "true" : "false");
  std::fclose(json);

  std::printf("[gates] bitwise=%s speedup=%s sublinear=%s (ratio %.2f <= %.2f)\n",
              gate_bitwise ? "ok" : "FAIL", gate_speedup ? "ok" : "FAIL",
              gate_sublinear ? "ok" : "FAIL", scaling_ratio, scaling_limit);
  return gate_bitwise && gate_speedup && gate_sublinear ? 0 : 1;
}

}  // namespace
}  // namespace dekg::bench

int main() { return dekg::bench::Main(); }
