// Table I — capability matrix: which tasks each link-prediction method can
// handle. This is structural metadata (it follows from each method's
// scoring mechanics, verified by the respective-study bench), printed in
// the paper's row order.
#include <cstdio>

int main() {
  struct Row {
    const char* group;
    const char* model;
    bool transductive;
    bool common_emerging;
    bool enclosing;
    bool bridging;
  };
  // Transductive methods score any pair of *seen* embeddings; inductive
  // methods add unseen-entity support; only subgraph methods handle
  // enclosing links of DEKGs; only DEKG-ILP scores bridging links with a
  // mechanism that does not require connectivity.
  const Row rows[] = {
      {"Transductive", "TransE", true, false, false, false},
      {"Transductive", "RotatE", true, false, false, false},
      {"Transductive", "ConvE", true, false, false, false},
      {"Inductive", "MEAN", true, true, false, false},
      {"Inductive", "GEN", true, true, false, false},
      {"Inductive", "Neural LP", true, true, true, false},
      {"Inductive", "RuleN", true, true, true, false},
      {"Inductive", "Grail", true, true, true, false},
      {"Inductive", "TACT", true, true, true, false},
      {"Inductive", "DEKG-ILP", true, true, true, true},
  };
  std::printf("Table I: summary of KG link prediction methods\n");
  std::printf("%-14s %-10s %12s %12s %12s %12s\n", "Group", "Model",
              "Transductive", "EmergingKG", "Enclosing", "Bridging");
  auto mark = [](bool b) { return b ? "yes" : "no"; };
  for (const Row& r : rows) {
    std::printf("%-14s %-10s %12s %12s %12s %12s\n", r.group, r.model,
                mark(r.transductive), mark(r.common_emerging),
                mark(r.enclosing), mark(r.bridging));
  }
  return 0;
}
