// Fig. 8 — case study: embedding heat maps for one enclosing link and one
// bridging link. As in the paper, the semantic map concatenates the CLRM
// embeddings e_i ⊕ e_j (2 x 32 -> 8x8) and the topological map
// concatenates the GSM final-layer states h_i ⊕ h_j.
//
// Expected shape: for the bridging link the semantic map carries most of
// the activation mass while the topological map is near zero (the GraIL
// path signal does not exist across the cut); for the enclosing link the
// two maps are comparably active.
#include <cmath>
#include <cstdio>

#include "bench/experiment.h"
#include "core/dekg_ilp.h"
#include "core/trainer.h"

namespace {

using namespace dekg;
using namespace dekg::bench;

// Prints a [1, 64] row vector as an 8x8 heat map of |values|, plus its
// mean absolute activation.
double PrintHeatMap(const char* title, const Tensor& row) {
  DEKG_CHECK_EQ(row.numel(), 64);
  std::printf("%s\n", title);
  double mass = 0.0;
  for (int i = 0; i < 8; ++i) {
    std::printf("  ");
    for (int j = 0; j < 8; ++j) {
      const double v = std::fabs(row.Data()[i * 8 + j]);
      mass += v;
      std::printf("%6.3f ", v);
    }
    std::printf("\n");
  }
  mass /= 64.0;
  std::printf("  mean |activation| = %.4f\n", mass);
  return mass;
}

void CaseStudy(core::DekgIlpModel* model, const DekgDataset& dataset,
               const LabeledLink& link) {
  const KnowledgeGraph& graph = dataset.inference_graph();
  std::printf("\n--- %s link (%d, r%d, %d) ---\n", LinkKindName(link.kind),
              link.triple.head, link.triple.rel, link.triple.tail);

  // Semantic embeddings e_i ⊕ e_j from CLRM.
  ag::Var ei = model->clrm()->EmbedEntity(
      graph.RelationComponentTable(link.triple.head));
  ag::Var ej = model->clrm()->EmbedEntity(
      graph.RelationComponentTable(link.triple.tail));
  Tensor semantic = Concat({ei.value(), ej.value()}, /*axis=*/1);

  // Topological embeddings h_i ⊕ h_j from GSM's final layer.
  Rng rng(3);
  Subgraph sub = model->gsm()->Extract(graph, link.triple);
  gnn::RgcnOutput enc =
      model->gsm()->Encode(sub, link.triple.rel, /*training=*/false, &rng);
  Tensor topological =
      Concat({enc.head_repr.value(), enc.tail_repr.value()}, /*axis=*/1);

  const double sem_mass = PrintHeatMap("semantic e_i ⊕ e_j", semantic);
  const double tpo_mass = PrintHeatMap("topological h_i ⊕ h_j", topological);
  std::printf("subgraph: %zu nodes, %zu edges\n", sub.nodes.size(),
              sub.edges.size());
  std::printf("semantic/topological activation ratio: %.2f\n",
              sem_mass / std::max(tpo_mass, 1e-9));

  // Per-module discriminative margin: how much each module's score
  // separates the true link from corrupted candidates. This is the
  // operational content of the paper's heat-map observation — for
  // bridging links CLRM carries the discrimination, for enclosing links
  // the two modules contribute comparably.
  auto module_scores = [&](const Triple& t) {
    Rng local_rng(5);
    double sem = model->clrm()
                     ->ScoreTriple(graph.RelationComponentTable(t.head),
                                   t.rel, graph.RelationComponentTable(t.tail))
                     .value()
                     .Data()[0];
    double tpo = model->gsm()
                     ->ScoreTriple(graph, t, /*training=*/false, &local_rng)
                     .value()
                     .Data()[0];
    return std::pair<double, double>(sem, tpo);
  };
  auto [true_sem, true_tpo] = module_scores(link.triple);
  Rng corrupt_rng(7);
  double mean_sem = 0.0, mean_tpo = 0.0;
  const int kCandidates = 20;
  const int32_t num_entities = graph.num_entities();
  for (int i = 0; i < kCandidates; ++i) {
    Triple corrupted = link.triple;
    corrupted.tail = static_cast<EntityId>(
        corrupt_rng.UniformUint64(static_cast<uint64_t>(num_entities)));
    auto [s, t] = module_scores(corrupted);
    mean_sem += s / kCandidates;
    mean_tpo += t / kCandidates;
  }
  std::printf("discriminative margin (true - mean corrupted): "
              "semantic %+.3f, topological %+.3f\n",
              true_sem - mean_sem, true_tpo - mean_tpo);
}

}  // namespace

int main() {
  SetMinLogSeverity(LogSeverity::kWarning);
  ExperimentConfig config = ExperimentConfig::FromEnv();

  std::printf("Fig. 8: embedding heat maps (enclosing vs bridging)\n");

  // Train one DEKG-ILP model (the paper's case-study model). dim must be
  // 32 so that e_i ⊕ e_j resizes to 8x8.
  config.dim = 32;
  DekgDataset dataset =
      MakeDataset(datagen::KgFamily::kFbLike, datagen::EvalSplit::kEq, config);
  core::DekgIlpConfig ilp;
  ilp.num_relations = dataset.num_relations();
  ilp.dim = config.dim;
  core::DekgIlpModel model(ilp, config.seed);
  core::TrainConfig train;
  train.epochs = config.subgraph_epochs;
  train.max_triples_per_epoch = config.subgraph_triples_per_epoch;
  train.seed = config.seed ^ 0x42;
  core::DekgIlpTrainer trainer(&model, &dataset, train);
  trainer.Train();

  const LabeledLink* enclosing = nullptr;
  const LabeledLink* bridging = nullptr;
  for (const LabeledLink& link : dataset.test_links()) {
    if (link.kind == LinkKind::kEnclosing && enclosing == nullptr) {
      enclosing = &link;
    }
    if (link.kind == LinkKind::kBridging && bridging == nullptr) {
      bridging = &link;
    }
    if (enclosing != nullptr && bridging != nullptr) break;
  }
  DEKG_CHECK(enclosing != nullptr && bridging != nullptr);
  CaseStudy(&model, dataset, *enclosing);
  CaseStudy(&model, dataset, *bridging);
  return 0;
}
