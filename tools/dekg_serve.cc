// Online scoring server entrypoint (DESIGN.md §9).
//
// Loads a checkpointed DEKG-ILP model, builds the live graph from a
// dataset directory, and serves the binary protocol on a TCP port.
//
// Usage:
//   dekg_serve <dir> <checkpoint> [--dim D] [--host H] [--port P]
//              [--port-file PATH] [--threads T] [--shards N] [--batch N]
//              [--cache N] [--max-entities N] [--no-emerging]
//              [--no-patch-cache] [--throughput-wait-us U]
//       Serve. --port 0 (default) binds an ephemeral port; the bound port
//       is printed and, with --port-file, written there for scripts.
//       --shards N partitions the entity space over N shard engines
//       (consistent-hash routing, DESIGN.md §14; scores are bit-identical
//       at any shard count). --no-emerging starts from the train graph
//       only (emerging triples arrive via the client's ingest-emerging
//       mode). --no-patch-cache disables in-place cache maintenance on
//       ingest (DESIGN.md §13) in favor of plain invalidation. By default
//       the batcher runs in deterministic mode; --throughput-wait-us U >
//       0 switches to throughput mode with that batch-fill wait.
//
//   dekg_serve <dir> <checkpoint> --print-golden N [--dim D] [--seed S]
//       No server: print the offline scores of the first N test links
//       (DekgIlpPredictor over the static inference graph) one per line
//       at full %.17g precision. The CI smoke diffs the served scores
//       against this output bit for bit.
//
// SIGTERM / SIGINT trigger a graceful drain: stop accepting, answer
// everything admitted, then exit (the self-pipe pattern — the handler
// only writes one byte; a watcher thread does the actual stop).
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/dekg_ilp.h"
#include "kg/dataset_io.h"
#include "nn/train_checkpoint.h"
#include "serve/batcher.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace dekg;

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int32_t Int32Flag(int argc, char** argv, const char* name, int32_t fallback) {
  const char* raw = FlagValue(argc, argv, name, nullptr);
  if (raw == nullptr) return fallback;
  int32_t value = 0;
  if (!ParseInt32(raw, &value)) {
    std::fprintf(stderr, "bad integer for %s: %s\n", name, raw);
    std::exit(2);
  }
  return value;
}

int self_pipe_write_fd = -1;

void HandleStopSignal(int /*signo*/) {
  const char byte = 1;
  // write() is async-signal-safe; the watcher thread does the real work.
  [[maybe_unused]] ssize_t n = ::write(self_pipe_write_fd, &byte, 1);
}

int PrintGolden(const DekgDataset& dataset, core::DekgIlpModel* model,
                int32_t count) {
  core::DekgIlpPredictor predictor(model);
  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    if (static_cast<int32_t>(triples.size()) >= count) break;
    triples.push_back(link.triple);
  }
  const std::vector<double> scores =
      predictor.ScoreTriples(dataset.inference_graph(), triples);
  for (double s : scores) std::printf("%.17g\n", s);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(
        stderr,
        "usage: dekg_serve <dir> <checkpoint> [--dim D] [--host H] [--port P]"
        " [--port-file PATH]\n"
        "                  [--threads T] [--shards N] [--batch N] [--cache N]"
        " [--max-entities N]\n"
        "                  [--no-emerging] [--no-patch-cache]"
        " [--throughput-wait-us U] [--print-golden N]\n"
        "                  [--precision fp32|fp16|int8]\n");
    return 2;
  }
  const std::string dir = argv[1];
  const std::string checkpoint = argv[2];

  const int32_t threads = Int32Flag(argc, argv, "--threads", 0);
  if (threads > 0) SetDefaultThreadCount(threads);

  DekgDataset dataset = LoadDekgDatasetDir(dir, "serve");
  core::DekgIlpConfig config;
  config.num_relations = dataset.num_relations();
  config.dim = Int32Flag(argc, argv, "--dim", 32);
  core::DekgIlpModel model(config, /*seed=*/1);
  std::string error;
  if (!nn::LoadParamsOnly(checkpoint, &model, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const int32_t golden = Int32Flag(argc, argv, "--print-golden", 0);
  if (golden > 0) return PrintGolden(dataset, &model, golden);

  // Base graph: the full offline inference graph, or — with --no-emerging
  // — the train graph only, converging to the same graph (bit-identically)
  // once the emerging triples are ingested in file order.
  const bool no_emerging = HasFlag(argc, argv, "--no-emerging");
  const KnowledgeGraph& base =
      no_emerging ? dataset.original_graph() : dataset.inference_graph();

  serve::RouterConfig router_config;
  router_config.num_shards = Int32Flag(argc, argv, "--shards", 1);
  if (router_config.num_shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  serve::EngineConfig& engine_config = router_config.engine;
  engine_config.cache_capacity = Int32Flag(argc, argv, "--cache", 4096);
  engine_config.live_graph.max_entities =
      Int32Flag(argc, argv, "--max-entities", 1 << 20);
  // --no-patch-cache restores PR 4's invalidate-on-ingest maintenance
  // (bit-identical scores either way — see cache_patch_differential_test).
  engine_config.patch_cache = !HasFlag(argc, argv, "--no-patch-cache");
  // --precision fp16/int8 serves the frozen model quantized (DESIGN.md
  // §15): smaller footprint, epsilon-accurate scores. fp32 (default)
  // keeps the bit-exact determinism contract.
  const char* precision_flag = FlagValue(argc, argv, "--precision", "fp32");
  if (!quant::ParsePrecision(precision_flag, &engine_config.precision)) {
    std::fprintf(stderr, "--precision must be fp32, fp16, or int8 (got %s)\n",
                 precision_flag);
    return 2;
  }
  serve::Router router(&model, base, router_config);

  serve::BatcherConfig batcher_config;
  batcher_config.max_batch_triples = Int32Flag(argc, argv, "--batch", 256);
  const int32_t wait_us = Int32Flag(argc, argv, "--throughput-wait-us", 0);
  if (wait_us > 0) {
    batcher_config.deterministic = false;
    batcher_config.batch_wait_us = wait_us;
  }
  serve::MicroBatcher batcher(&router, batcher_config);

  serve::ServerConfig server_config;
  server_config.host = FlagValue(argc, argv, "--host", "127.0.0.1");
  server_config.port =
      static_cast<uint16_t>(Int32Flag(argc, argv, "--port", 0));
  serve::ScoringServer server(&batcher, server_config);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Graceful SIGTERM/SIGINT via self-pipe + watcher thread.
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  self_pipe_write_fd = pipe_fds[1];
  struct sigaction action{};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  std::thread watcher([&server, read_fd = pipe_fds[0]] {
    char byte;
    while (::read(read_fd, &byte, 1) < 0 && errno == EINTR) {
    }
    server.RequestStop();
  });

  std::printf(
      "serving %s on %s:%u (%s mode, %d shard%s, batch %lld, cache %lld, "
      "%s)\n",
      dir.c_str(), server_config.host.c_str(), server.port(),
      batcher_config.deterministic ? "deterministic" : "throughput",
      router_config.num_shards, router_config.num_shards == 1 ? "" : "s",
      static_cast<long long>(batcher_config.max_batch_triples),
      static_cast<long long>(engine_config.cache_capacity),
      quant::PrecisionName(engine_config.precision));
  std::fflush(stdout);
  const char* port_file = FlagValue(argc, argv, "--port-file", nullptr);
  if (port_file != nullptr) {
    std::FILE* f = std::fopen(port_file, "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }

  server.Wait();
  // Unblock the watcher if shutdown came from the protocol, not a signal.
  { [[maybe_unused]] ssize_t n = ::write(self_pipe_write_fd, "", 1); }
  watcher.join();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);

  const serve::EngineStats stats = router.Stats();
  std::printf("drained: %llu ingested (epoch %llu), cache %llu hits / "
              "%llu misses, %llu invalidated\n",
              static_cast<unsigned long long>(stats.ingested_triples),
              static_cast<unsigned long long>(router.epoch()),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.cache_invalidated));
  for (int32_t s = 0; s < router.num_shards(); ++s) {
    const serve::EngineStats one = router.ShardStats(s);
    std::printf("  shard %d: %llu hits / %llu misses, %llu patched, "
                "%llu repaired, %llu fallback\n",
                s, static_cast<unsigned long long>(one.cache_hits),
                static_cast<unsigned long long>(one.cache_misses),
                static_cast<unsigned long long>(one.cache_patched),
                static_cast<unsigned long long>(one.cache_repaired),
                static_cast<unsigned long long>(one.cache_fallback));
  }
  return 0;
}
