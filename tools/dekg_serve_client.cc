// Client CLI for the online scoring server (DESIGN.md §9).
//
// Usage:
//   dekg_serve_client <port> score <dir> [--links N] [--seed S]
//                     [--pipeline D] [--host H]
//       Send the first N test links of the dataset as one scoring request
//       and print the returned scores one per line at full %.17g
//       precision — the format of `dekg_serve --print-golden`, so the CI
//       smoke can diff them bit for bit. --pipeline D > 1 splits the
//       links into D chunks sent down one connection with up to D
//       requests in flight (protocol v3 index_offset keeps every
//       triple's Rng stream, so the concatenated output is still
//       bit-identical to the golden print).
//
//   dekg_serve_client <port> ingest-emerging <dir> [--chunk N] [--host H]
//       Stream the dataset's emerging triples to the server in file
//       order, N per ingest request. A server started with --no-emerging
//       converges to the exact offline inference graph.
//
//   dekg_serve_client <port> stats [--host H]
//       Print the server's STATS surface.
//
//   dekg_serve_client <port> shutdown [--host H]
//       Ask the server to drain and exit.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "kg/dataset_io.h"
#include "quant/quantize.h"
#include "serve/client.h"

using namespace dekg;

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int32_t Int32Flag(int argc, char** argv, const char* name, int32_t fallback) {
  const char* raw = FlagValue(argc, argv, name, nullptr);
  if (raw == nullptr) return fallback;
  int32_t value = 0;
  if (!ParseInt32(raw, &value)) {
    std::fprintf(stderr, "bad integer for %s: %s\n", name, raw);
    std::exit(2);
  }
  return value;
}

int Fail(const std::string& error) {
  std::fprintf(stderr, "%s\n", error.c_str());
  return 1;
}

int Score(serve::Client* client, int argc, char** argv) {
  DekgDataset dataset = LoadDekgDatasetDir(argv[3], "client");
  const int32_t links = Int32Flag(argc, argv, "--links", 50);
  const int32_t pipeline = Int32Flag(argc, argv, "--pipeline", 1);
  const uint64_t seed =
      static_cast<uint64_t>(Int32Flag(argc, argv, "--seed", 123));
  std::vector<Triple> triples;
  for (const LabeledLink& link : dataset.test_links()) {
    if (static_cast<int32_t>(triples.size()) >= links) break;
    triples.push_back(link.triple);
  }
  std::string error;
  if (pipeline <= 1) {
    serve::ScoreRequest request;
    request.seed = seed;
    request.triples = triples;
    serve::ScoreResponse response;
    if (!client->Score(request, &response, &error)) return Fail(error);
    if (response.status != serve::Status::kOk) {
      return Fail(std::string("score rejected: ") +
                  serve::StatusName(response.status) + ": " + response.error);
    }
    for (double s : response.scores) std::printf("%.17g\n", s);
    return 0;
  }
  // Pipelined: split the logical request into `pipeline` chunks, each
  // carrying its logical index offset, with the whole window in flight.
  const size_t chunk =
      (triples.size() + static_cast<size_t>(pipeline) - 1) /
      static_cast<size_t>(pipeline);
  std::vector<serve::ScoreRequest> requests;
  for (size_t begin = 0; begin < triples.size(); begin += chunk) {
    const size_t end = std::min(triples.size(), begin + chunk);
    serve::ScoreRequest request;
    request.request_id = requests.size() + 1;
    request.seed = seed;
    request.index_offset = begin;
    request.triples.assign(triples.begin() + static_cast<int64_t>(begin),
                           triples.begin() + static_cast<int64_t>(end));
    requests.push_back(std::move(request));
  }
  std::vector<serve::ScoreResponse> responses;
  if (!client->ScorePipelined(requests, static_cast<size_t>(pipeline),
                              &responses, &error)) {
    return Fail(error);
  }
  for (const serve::ScoreResponse& response : responses) {
    if (response.status != serve::Status::kOk) {
      return Fail(std::string("score rejected: ") +
                  serve::StatusName(response.status) + ": " + response.error);
    }
    for (double s : response.scores) std::printf("%.17g\n", s);
  }
  return 0;
}

int IngestEmerging(serve::Client* client, int argc, char** argv) {
  DekgDataset dataset = LoadDekgDatasetDir(argv[3], "client");
  const int32_t chunk = Int32Flag(argc, argv, "--chunk", 64);
  const std::vector<Triple>& emerging = dataset.emerging_triples();
  uint64_t accepted = 0;
  uint64_t invalidated = 0;
  uint64_t patched = 0;
  uint64_t repaired = 0;
  for (size_t begin = 0; begin < emerging.size();
       begin += static_cast<size_t>(chunk)) {
    const size_t end =
        std::min(emerging.size(), begin + static_cast<size_t>(chunk));
    serve::IngestRequest request;
    request.triples.assign(emerging.begin() + static_cast<int64_t>(begin),
                           emerging.begin() + static_cast<int64_t>(end));
    serve::IngestResponse response;
    std::string error;
    if (!client->Ingest(request, &response, &error)) return Fail(error);
    if (response.status != serve::Status::kOk) {
      return Fail(std::string("ingest rejected: ") +
                  serve::StatusName(response.status) + ": " + response.error);
    }
    accepted += response.accepted;
    invalidated += response.invalidated;
    patched += response.patched;
    repaired += response.repaired;
  }
  std::printf(
      "ingested %llu emerging triples (%llu cache invalidations, "
      "%llu patched, %llu repaired)\n",
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(invalidated),
      static_cast<unsigned long long>(patched),
      static_cast<unsigned long long>(repaired));
  return 0;
}

int Stats(serve::Client* client) {
  serve::StatsResponse s;
  std::string error;
  if (!client->Stats(&s, &error)) return Fail(error);
  std::printf("queue_depth\t%llu\n",
              static_cast<unsigned long long>(s.queue_depth));
  std::printf("requests_admitted\t%llu\n",
              static_cast<unsigned long long>(s.requests_admitted));
  std::printf("batches_scored\t%llu\n",
              static_cast<unsigned long long>(s.batches_scored));
  std::printf("triples_scored\t%llu\n",
              static_cast<unsigned long long>(s.triples_scored));
  for (size_t b = 0; b < 16; ++b) {
    if (s.batch_hist[b] == 0) continue;
    std::printf("batch_hist[%zu-%zu]\t%llu\n", size_t{1} << b,
                (size_t{2} << b) - 1,
                static_cast<unsigned long long>(s.batch_hist[b]));
  }
  std::printf("latency_p50_ms\t%.3f\n", s.latency_p50_ms);
  std::printf("latency_p99_ms\t%.3f\n", s.latency_p99_ms);
  std::printf("latency_samples\t%llu\n",
              static_cast<unsigned long long>(s.latency_samples));
  std::printf("cache_hits\t%llu\n",
              static_cast<unsigned long long>(s.cache_hits));
  std::printf("cache_misses\t%llu\n",
              static_cast<unsigned long long>(s.cache_misses));
  std::printf("cache_entries\t%llu\n",
              static_cast<unsigned long long>(s.cache_entries));
  std::printf("cache_evictions\t%llu\n",
              static_cast<unsigned long long>(s.cache_evictions));
  std::printf("cache_invalidated\t%llu\n",
              static_cast<unsigned long long>(s.cache_invalidated));
  std::printf("cache_patched\t%llu\n",
              static_cast<unsigned long long>(s.cache_patched));
  std::printf("cache_repaired\t%llu\n",
              static_cast<unsigned long long>(s.cache_repaired));
  std::printf("cache_fallback\t%llu\n",
              static_cast<unsigned long long>(s.cache_fallback));
  std::printf("cache_bytes\t%llu\n",
              static_cast<unsigned long long>(s.cache_bytes));
  std::printf("graph_triples\t%llu\n",
              static_cast<unsigned long long>(s.graph_triples));
  std::printf("graph_entities\t%llu\n",
              static_cast<unsigned long long>(s.graph_entities));
  std::printf("ingested_triples\t%llu\n",
              static_cast<unsigned long long>(s.ingested_triples));
  std::printf("embedding_refreshes\t%llu\n",
              static_cast<unsigned long long>(s.embedding_refreshes));
  std::printf("epoch\t%llu\n", static_cast<unsigned long long>(s.epoch));
  std::printf("uptime_s\t%.3f\n", s.uptime_s);
  std::printf("precision\t%s\n",
              dekg::quant::PrecisionName(
                  static_cast<dekg::quant::Precision>(s.precision)));
  std::printf("frozen_row_bytes\t%llu\n",
              static_cast<unsigned long long>(s.frozen_row_bytes));
  std::printf("frozen_weight_bytes\t%llu\n",
              static_cast<unsigned long long>(s.frozen_weight_bytes));
  for (const serve::ShardStatsBlock& b : s.shards) {
    std::printf("shard[%u]\thits %llu\tmisses %llu\tentries %llu\t"
                "patched %llu\trepaired %llu\tfallback %llu\n",
                b.shard, static_cast<unsigned long long>(b.cache_hits),
                static_cast<unsigned long long>(b.cache_misses),
                static_cast<unsigned long long>(b.cache_entries),
                static_cast<unsigned long long>(b.cache_patched),
                static_cast<unsigned long long>(b.cache_repaired),
                static_cast<unsigned long long>(b.cache_fallback));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(
        stderr,
        "usage:\n"
        "  dekg_serve_client <port> score <dir> [--links N] [--seed S]"
        " [--pipeline D] [--host H]\n"
        "  dekg_serve_client <port> ingest-emerging <dir> [--chunk N]"
        " [--host H]\n"
        "  dekg_serve_client <port> stats [--host H]\n"
        "  dekg_serve_client <port> shutdown [--host H]\n");
    return 2;
  }
  int32_t port = 0;
  if (!dekg::ParseInt32(argv[1], &port) || port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port: %s\n", argv[1]);
    return 2;
  }
  const std::string command = argv[2];
  const std::string host = FlagValue(argc, argv, "--host", "127.0.0.1");

  serve::Client client;
  std::string error;
  if (!client.Connect(host, static_cast<uint16_t>(port), &error)) {
    return Fail(error);
  }
  if (command == "score" && argc >= 4) return Score(&client, argc, argv);
  if (command == "ingest-emerging" && argc >= 4) {
    return IngestEmerging(&client, argc, argv);
  }
  if (command == "stats") return Stats(&client);
  if (command == "shutdown") {
    if (!client.Shutdown(&error)) return Fail(error);
    std::printf("server draining\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
