# Empty compiler generated dependencies file for nba_draft.
# This may be replaced when dependencies are built.
