file(REMOVE_RECURSE
  "CMakeFiles/nba_draft.dir/nba_draft.cpp.o"
  "CMakeFiles/nba_draft.dir/nba_draft.cpp.o.d"
  "nba_draft"
  "nba_draft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nba_draft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
