file(REMOVE_RECURSE
  "CMakeFiles/dekg_cli.dir/dekg_cli.cpp.o"
  "CMakeFiles/dekg_cli.dir/dekg_cli.cpp.o.d"
  "dekg_cli"
  "dekg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
