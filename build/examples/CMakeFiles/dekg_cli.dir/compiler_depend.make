# Empty compiler generated dependencies file for dekg_cli.
# This may be replaced when dependencies are built.
