file(REMOVE_RECURSE
  "CMakeFiles/case_linkage.dir/case_linkage.cpp.o"
  "CMakeFiles/case_linkage.dir/case_linkage.cpp.o.d"
  "case_linkage"
  "case_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
