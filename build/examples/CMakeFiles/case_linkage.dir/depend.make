# Empty dependencies file for case_linkage.
# This may be replaced when dependencies are built.
