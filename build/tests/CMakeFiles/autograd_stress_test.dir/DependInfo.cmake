
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_stress_test.cc" "tests/CMakeFiles/autograd_stress_test.dir/autograd_stress_test.cc.o" "gcc" "tests/CMakeFiles/autograd_stress_test.dir/autograd_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/dekg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dekg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dekg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/dekg_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dekg_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dekg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dekg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/dekg_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dekg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/dekg_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dekg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
