# Empty dependencies file for trainer_validation_test.
# This may be replaced when dependencies are built.
