file(REMOVE_RECURSE
  "CMakeFiles/trainer_validation_test.dir/trainer_validation_test.cc.o"
  "CMakeFiles/trainer_validation_test.dir/trainer_validation_test.cc.o.d"
  "trainer_validation_test"
  "trainer_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
