# Empty compiler generated dependencies file for rulen_test.
# This may be replaced when dependencies are built.
