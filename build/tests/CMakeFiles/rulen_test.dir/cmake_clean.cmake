file(REMOVE_RECURSE
  "CMakeFiles/rulen_test.dir/rulen_test.cc.o"
  "CMakeFiles/rulen_test.dir/rulen_test.cc.o.d"
  "rulen_test"
  "rulen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
