file(REMOVE_RECURSE
  "CMakeFiles/rgcn_test.dir/rgcn_test.cc.o"
  "CMakeFiles/rgcn_test.dir/rgcn_test.cc.o.d"
  "rgcn_test"
  "rgcn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
