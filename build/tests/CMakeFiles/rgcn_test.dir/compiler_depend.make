# Empty compiler generated dependencies file for rgcn_test.
# This may be replaced when dependencies are built.
