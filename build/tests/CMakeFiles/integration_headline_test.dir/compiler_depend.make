# Empty compiler generated dependencies file for integration_headline_test.
# This may be replaced when dependencies are built.
