file(REMOVE_RECURSE
  "CMakeFiles/integration_headline_test.dir/integration_headline_test.cc.o"
  "CMakeFiles/integration_headline_test.dir/integration_headline_test.cc.o.d"
  "integration_headline_test"
  "integration_headline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_headline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
