file(REMOVE_RECURSE
  "CMakeFiles/tensor_edge_case_test.dir/tensor_edge_case_test.cc.o"
  "CMakeFiles/tensor_edge_case_test.dir/tensor_edge_case_test.cc.o.d"
  "tensor_edge_case_test"
  "tensor_edge_case_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_edge_case_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
