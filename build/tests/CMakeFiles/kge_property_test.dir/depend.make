# Empty dependencies file for kge_property_test.
# This may be replaced when dependencies are built.
