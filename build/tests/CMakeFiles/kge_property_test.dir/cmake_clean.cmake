file(REMOVE_RECURSE
  "CMakeFiles/kge_property_test.dir/kge_property_test.cc.o"
  "CMakeFiles/kge_property_test.dir/kge_property_test.cc.o.d"
  "kge_property_test"
  "kge_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kge_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
