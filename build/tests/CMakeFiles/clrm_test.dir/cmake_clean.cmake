file(REMOVE_RECURSE
  "CMakeFiles/clrm_test.dir/clrm_test.cc.o"
  "CMakeFiles/clrm_test.dir/clrm_test.cc.o.d"
  "clrm_test"
  "clrm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clrm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
