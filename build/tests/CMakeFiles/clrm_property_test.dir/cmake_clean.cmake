file(REMOVE_RECURSE
  "CMakeFiles/clrm_property_test.dir/clrm_property_test.cc.o"
  "CMakeFiles/clrm_property_test.dir/clrm_property_test.cc.o.d"
  "clrm_property_test"
  "clrm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clrm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
