# Empty compiler generated dependencies file for clrm_property_test.
# This may be replaced when dependencies are built.
