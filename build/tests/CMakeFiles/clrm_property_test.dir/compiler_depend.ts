# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clrm_property_test.
