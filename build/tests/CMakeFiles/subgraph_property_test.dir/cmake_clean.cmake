file(REMOVE_RECURSE
  "CMakeFiles/subgraph_property_test.dir/subgraph_property_test.cc.o"
  "CMakeFiles/subgraph_property_test.dir/subgraph_property_test.cc.o.d"
  "subgraph_property_test"
  "subgraph_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
