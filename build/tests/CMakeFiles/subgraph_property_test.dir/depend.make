# Empty dependencies file for subgraph_property_test.
# This may be replaced when dependencies are built.
