file(REMOVE_RECURSE
  "CMakeFiles/datagen_rule_signal_test.dir/datagen_rule_signal_test.cc.o"
  "CMakeFiles/datagen_rule_signal_test.dir/datagen_rule_signal_test.cc.o.d"
  "datagen_rule_signal_test"
  "datagen_rule_signal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_rule_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
