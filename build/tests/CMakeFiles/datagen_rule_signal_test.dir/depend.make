# Empty dependencies file for datagen_rule_signal_test.
# This may be replaced when dependencies are built.
