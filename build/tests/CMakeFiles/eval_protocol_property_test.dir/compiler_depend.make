# Empty compiler generated dependencies file for eval_protocol_property_test.
# This may be replaced when dependencies are built.
