file(REMOVE_RECURSE
  "CMakeFiles/gsm_test.dir/gsm_test.cc.o"
  "CMakeFiles/gsm_test.dir/gsm_test.cc.o.d"
  "gsm_test"
  "gsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
