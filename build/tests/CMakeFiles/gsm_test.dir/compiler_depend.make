# Empty compiler generated dependencies file for gsm_test.
# This may be replaced when dependencies are built.
