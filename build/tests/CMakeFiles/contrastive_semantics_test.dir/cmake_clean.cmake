file(REMOVE_RECURSE
  "CMakeFiles/contrastive_semantics_test.dir/contrastive_semantics_test.cc.o"
  "CMakeFiles/contrastive_semantics_test.dir/contrastive_semantics_test.cc.o.d"
  "contrastive_semantics_test"
  "contrastive_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contrastive_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
