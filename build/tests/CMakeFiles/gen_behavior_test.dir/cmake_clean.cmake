file(REMOVE_RECURSE
  "CMakeFiles/gen_behavior_test.dir/gen_behavior_test.cc.o"
  "CMakeFiles/gen_behavior_test.dir/gen_behavior_test.cc.o.d"
  "gen_behavior_test"
  "gen_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
