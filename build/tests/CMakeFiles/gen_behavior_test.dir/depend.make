# Empty dependencies file for gen_behavior_test.
# This may be replaced when dependencies are built.
