# Empty compiler generated dependencies file for integration_io_pipeline_test.
# This may be replaced when dependencies are built.
