# Empty dependencies file for graph_trainer_property_test.
# This may be replaced when dependencies are built.
