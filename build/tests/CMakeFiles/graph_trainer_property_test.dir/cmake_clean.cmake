file(REMOVE_RECURSE
  "CMakeFiles/graph_trainer_property_test.dir/graph_trainer_property_test.cc.o"
  "CMakeFiles/graph_trainer_property_test.dir/graph_trainer_property_test.cc.o.d"
  "graph_trainer_property_test"
  "graph_trainer_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_trainer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
