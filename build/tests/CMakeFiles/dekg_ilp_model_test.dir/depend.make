# Empty dependencies file for dekg_ilp_model_test.
# This may be replaced when dependencies are built.
