file(REMOVE_RECURSE
  "CMakeFiles/dekg_ilp_model_test.dir/dekg_ilp_model_test.cc.o"
  "CMakeFiles/dekg_ilp_model_test.dir/dekg_ilp_model_test.cc.o.d"
  "dekg_ilp_model_test"
  "dekg_ilp_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_ilp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
