file(REMOVE_RECURSE
  "CMakeFiles/family_benchmark_test.dir/family_benchmark_test.cc.o"
  "CMakeFiles/family_benchmark_test.dir/family_benchmark_test.cc.o.d"
  "family_benchmark_test"
  "family_benchmark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_benchmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
