# Empty dependencies file for family_benchmark_test.
# This may be replaced when dependencies are built.
