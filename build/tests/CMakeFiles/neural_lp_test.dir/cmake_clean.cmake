file(REMOVE_RECURSE
  "CMakeFiles/neural_lp_test.dir/neural_lp_test.cc.o"
  "CMakeFiles/neural_lp_test.dir/neural_lp_test.cc.o.d"
  "neural_lp_test"
  "neural_lp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
