# Empty dependencies file for neural_lp_test.
# This may be replaced when dependencies are built.
