file(REMOVE_RECURSE
  "CMakeFiles/optimizer_sparse_test.dir/optimizer_sparse_test.cc.o"
  "CMakeFiles/optimizer_sparse_test.dir/optimizer_sparse_test.cc.o.d"
  "optimizer_sparse_test"
  "optimizer_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
