# Empty dependencies file for optimizer_sparse_test.
# This may be replaced when dependencies are built.
