file(REMOVE_RECURSE
  "CMakeFiles/gsm_property_test.dir/gsm_property_test.cc.o"
  "CMakeFiles/gsm_property_test.dir/gsm_property_test.cc.o.d"
  "gsm_property_test"
  "gsm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
