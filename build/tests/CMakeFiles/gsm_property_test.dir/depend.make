# Empty dependencies file for gsm_property_test.
# This may be replaced when dependencies are built.
