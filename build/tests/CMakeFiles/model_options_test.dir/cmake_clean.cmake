file(REMOVE_RECURSE
  "CMakeFiles/model_options_test.dir/model_options_test.cc.o"
  "CMakeFiles/model_options_test.dir/model_options_test.cc.o.d"
  "model_options_test"
  "model_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
