# Empty dependencies file for model_options_test.
# This may be replaced when dependencies are built.
