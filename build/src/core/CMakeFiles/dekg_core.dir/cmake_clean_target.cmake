file(REMOVE_RECURSE
  "libdekg_core.a"
)
