file(REMOVE_RECURSE
  "CMakeFiles/dekg_core.dir/clrm.cc.o"
  "CMakeFiles/dekg_core.dir/clrm.cc.o.d"
  "CMakeFiles/dekg_core.dir/dekg_ilp.cc.o"
  "CMakeFiles/dekg_core.dir/dekg_ilp.cc.o.d"
  "CMakeFiles/dekg_core.dir/explain.cc.o"
  "CMakeFiles/dekg_core.dir/explain.cc.o.d"
  "CMakeFiles/dekg_core.dir/gsm.cc.o"
  "CMakeFiles/dekg_core.dir/gsm.cc.o.d"
  "CMakeFiles/dekg_core.dir/trainer.cc.o"
  "CMakeFiles/dekg_core.dir/trainer.cc.o.d"
  "libdekg_core.a"
  "libdekg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
