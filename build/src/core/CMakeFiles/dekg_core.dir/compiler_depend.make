# Empty compiler generated dependencies file for dekg_core.
# This may be replaced when dependencies are built.
