file(REMOVE_RECURSE
  "CMakeFiles/dekg_kg.dir/dataset.cc.o"
  "CMakeFiles/dekg_kg.dir/dataset.cc.o.d"
  "CMakeFiles/dekg_kg.dir/dataset_io.cc.o"
  "CMakeFiles/dekg_kg.dir/dataset_io.cc.o.d"
  "CMakeFiles/dekg_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/dekg_kg.dir/knowledge_graph.cc.o.d"
  "libdekg_kg.a"
  "libdekg_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
