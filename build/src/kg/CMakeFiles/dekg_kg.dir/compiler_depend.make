# Empty compiler generated dependencies file for dekg_kg.
# This may be replaced when dependencies are built.
