file(REMOVE_RECURSE
  "libdekg_kg.a"
)
