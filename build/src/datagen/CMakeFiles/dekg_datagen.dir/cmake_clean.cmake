file(REMOVE_RECURSE
  "CMakeFiles/dekg_datagen.dir/synthetic_kg.cc.o"
  "CMakeFiles/dekg_datagen.dir/synthetic_kg.cc.o.d"
  "libdekg_datagen.a"
  "libdekg_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
