file(REMOVE_RECURSE
  "libdekg_datagen.a"
)
