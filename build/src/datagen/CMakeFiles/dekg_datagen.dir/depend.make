# Empty dependencies file for dekg_datagen.
# This may be replaced when dependencies are built.
