
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/dekg_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/dekg_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/dekg_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dekg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
