file(REMOVE_RECURSE
  "CMakeFiles/dekg_graph.dir/subgraph.cc.o"
  "CMakeFiles/dekg_graph.dir/subgraph.cc.o.d"
  "libdekg_graph.a"
  "libdekg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
