# Empty dependencies file for dekg_graph.
# This may be replaced when dependencies are built.
