file(REMOVE_RECURSE
  "libdekg_graph.a"
)
