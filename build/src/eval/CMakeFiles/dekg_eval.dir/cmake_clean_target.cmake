file(REMOVE_RECURSE
  "libdekg_eval.a"
)
