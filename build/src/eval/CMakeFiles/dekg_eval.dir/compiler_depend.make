# Empty compiler generated dependencies file for dekg_eval.
# This may be replaced when dependencies are built.
