file(REMOVE_RECURSE
  "CMakeFiles/dekg_eval.dir/evaluator.cc.o"
  "CMakeFiles/dekg_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/dekg_eval.dir/significance.cc.o"
  "CMakeFiles/dekg_eval.dir/significance.cc.o.d"
  "libdekg_eval.a"
  "libdekg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
