# Empty dependencies file for dekg_tensor.
# This may be replaced when dependencies are built.
