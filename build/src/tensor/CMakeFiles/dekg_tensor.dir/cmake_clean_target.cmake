file(REMOVE_RECURSE
  "libdekg_tensor.a"
)
