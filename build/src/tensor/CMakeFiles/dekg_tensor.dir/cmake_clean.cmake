file(REMOVE_RECURSE
  "CMakeFiles/dekg_tensor.dir/tensor.cc.o"
  "CMakeFiles/dekg_tensor.dir/tensor.cc.o.d"
  "libdekg_tensor.a"
  "libdekg_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
