# Empty dependencies file for dekg_autograd.
# This may be replaced when dependencies are built.
