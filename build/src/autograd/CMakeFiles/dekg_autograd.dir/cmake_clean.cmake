file(REMOVE_RECURSE
  "CMakeFiles/dekg_autograd.dir/ops.cc.o"
  "CMakeFiles/dekg_autograd.dir/ops.cc.o.d"
  "CMakeFiles/dekg_autograd.dir/variable.cc.o"
  "CMakeFiles/dekg_autograd.dir/variable.cc.o.d"
  "libdekg_autograd.a"
  "libdekg_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
