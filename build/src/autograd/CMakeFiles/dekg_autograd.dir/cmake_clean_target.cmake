file(REMOVE_RECURSE
  "libdekg_autograd.a"
)
