file(REMOVE_RECURSE
  "CMakeFiles/dekg_baselines.dir/gen.cc.o"
  "CMakeFiles/dekg_baselines.dir/gen.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/graph_trainer.cc.o"
  "CMakeFiles/dekg_baselines.dir/graph_trainer.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/kge_base.cc.o"
  "CMakeFiles/dekg_baselines.dir/kge_base.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/kge_models.cc.o"
  "CMakeFiles/dekg_baselines.dir/kge_models.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/mean.cc.o"
  "CMakeFiles/dekg_baselines.dir/mean.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/neural_lp.cc.o"
  "CMakeFiles/dekg_baselines.dir/neural_lp.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/rulen.cc.o"
  "CMakeFiles/dekg_baselines.dir/rulen.cc.o.d"
  "CMakeFiles/dekg_baselines.dir/tact.cc.o"
  "CMakeFiles/dekg_baselines.dir/tact.cc.o.d"
  "libdekg_baselines.a"
  "libdekg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
