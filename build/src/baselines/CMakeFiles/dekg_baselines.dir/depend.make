# Empty dependencies file for dekg_baselines.
# This may be replaced when dependencies are built.
