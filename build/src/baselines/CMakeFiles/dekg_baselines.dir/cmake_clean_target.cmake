file(REMOVE_RECURSE
  "libdekg_baselines.a"
)
