file(REMOVE_RECURSE
  "CMakeFiles/dekg_nn.dir/layers.cc.o"
  "CMakeFiles/dekg_nn.dir/layers.cc.o.d"
  "CMakeFiles/dekg_nn.dir/module.cc.o"
  "CMakeFiles/dekg_nn.dir/module.cc.o.d"
  "CMakeFiles/dekg_nn.dir/optimizer.cc.o"
  "CMakeFiles/dekg_nn.dir/optimizer.cc.o.d"
  "libdekg_nn.a"
  "libdekg_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
