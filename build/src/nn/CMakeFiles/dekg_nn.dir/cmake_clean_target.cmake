file(REMOVE_RECURSE
  "libdekg_nn.a"
)
