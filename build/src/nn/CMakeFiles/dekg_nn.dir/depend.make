# Empty dependencies file for dekg_nn.
# This may be replaced when dependencies are built.
