# Empty dependencies file for dekg_gnn.
# This may be replaced when dependencies are built.
