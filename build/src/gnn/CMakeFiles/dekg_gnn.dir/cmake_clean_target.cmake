file(REMOVE_RECURSE
  "libdekg_gnn.a"
)
