file(REMOVE_RECURSE
  "CMakeFiles/dekg_gnn.dir/rgcn.cc.o"
  "CMakeFiles/dekg_gnn.dir/rgcn.cc.o.d"
  "libdekg_gnn.a"
  "libdekg_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
