# Empty compiler generated dependencies file for dekg_common.
# This may be replaced when dependencies are built.
