file(REMOVE_RECURSE
  "libdekg_common.a"
)
