file(REMOVE_RECURSE
  "CMakeFiles/dekg_common.dir/logging.cc.o"
  "CMakeFiles/dekg_common.dir/logging.cc.o.d"
  "CMakeFiles/dekg_common.dir/rng.cc.o"
  "CMakeFiles/dekg_common.dir/rng.cc.o.d"
  "CMakeFiles/dekg_common.dir/string_util.cc.o"
  "CMakeFiles/dekg_common.dir/string_util.cc.o.d"
  "libdekg_common.a"
  "libdekg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
