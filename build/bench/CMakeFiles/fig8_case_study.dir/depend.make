# Empty dependencies file for fig8_case_study.
# This may be replaced when dependencies are built.
