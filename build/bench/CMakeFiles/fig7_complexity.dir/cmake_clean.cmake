file(REMOVE_RECURSE
  "CMakeFiles/fig7_complexity.dir/fig7_complexity.cc.o"
  "CMakeFiles/fig7_complexity.dir/fig7_complexity.cc.o.d"
  "fig7_complexity"
  "fig7_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
