# Empty compiler generated dependencies file for fig7_complexity.
# This may be replaced when dependencies are built.
