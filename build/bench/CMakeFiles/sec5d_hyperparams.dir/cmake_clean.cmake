file(REMOVE_RECURSE
  "CMakeFiles/sec5d_hyperparams.dir/sec5d_hyperparams.cc.o"
  "CMakeFiles/sec5d_hyperparams.dir/sec5d_hyperparams.cc.o.d"
  "sec5d_hyperparams"
  "sec5d_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5d_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
