# Empty compiler generated dependencies file for sec5d_hyperparams.
# This may be replaced when dependencies are built.
