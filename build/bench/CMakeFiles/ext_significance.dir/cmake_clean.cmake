file(REMOVE_RECURSE
  "CMakeFiles/ext_significance.dir/ext_significance.cc.o"
  "CMakeFiles/ext_significance.dir/ext_significance.cc.o.d"
  "ext_significance"
  "ext_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
