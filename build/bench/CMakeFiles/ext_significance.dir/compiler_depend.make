# Empty compiler generated dependencies file for ext_significance.
# This may be replaced when dependencies are built.
