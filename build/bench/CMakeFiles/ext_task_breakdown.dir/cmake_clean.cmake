file(REMOVE_RECURSE
  "CMakeFiles/ext_task_breakdown.dir/ext_task_breakdown.cc.o"
  "CMakeFiles/ext_task_breakdown.dir/ext_task_breakdown.cc.o.d"
  "ext_task_breakdown"
  "ext_task_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_task_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
