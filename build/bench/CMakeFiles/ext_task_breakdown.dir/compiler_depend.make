# Empty compiler generated dependencies file for ext_task_breakdown.
# This may be replaced when dependencies are built.
