file(REMOVE_RECURSE
  "CMakeFiles/fig5_respective.dir/fig5_respective.cc.o"
  "CMakeFiles/fig5_respective.dir/fig5_respective.cc.o.d"
  "fig5_respective"
  "fig5_respective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_respective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
