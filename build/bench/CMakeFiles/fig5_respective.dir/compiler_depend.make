# Empty compiler generated dependencies file for fig5_respective.
# This may be replaced when dependencies are built.
