file(REMOVE_RECURSE
  "CMakeFiles/ext_candidate_sensitivity.dir/ext_candidate_sensitivity.cc.o"
  "CMakeFiles/ext_candidate_sensitivity.dir/ext_candidate_sensitivity.cc.o.d"
  "ext_candidate_sensitivity"
  "ext_candidate_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_candidate_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
