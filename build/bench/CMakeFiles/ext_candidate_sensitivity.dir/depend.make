# Empty dependencies file for ext_candidate_sensitivity.
# This may be replaced when dependencies are built.
