file(REMOVE_RECURSE
  "CMakeFiles/ext_hops_ablation.dir/ext_hops_ablation.cc.o"
  "CMakeFiles/ext_hops_ablation.dir/ext_hops_ablation.cc.o.d"
  "ext_hops_ablation"
  "ext_hops_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hops_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
