# Empty dependencies file for ext_hops_ablation.
# This may be replaced when dependencies are built.
