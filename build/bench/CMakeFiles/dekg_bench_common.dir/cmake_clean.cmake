file(REMOVE_RECURSE
  "CMakeFiles/dekg_bench_common.dir/experiment.cc.o"
  "CMakeFiles/dekg_bench_common.dir/experiment.cc.o.d"
  "libdekg_bench_common.a"
  "libdekg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
