file(REMOVE_RECURSE
  "libdekg_bench_common.a"
)
